#include "casc/analysis/shadow.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "casc/core/chunk.hpp"
#include "casc/common/check.hpp"

namespace casc::analysis {

namespace {

std::string hex(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// A coalesced staged interval [lo, hi) with the iteration span of the
/// staged reads that produced it.
struct StagedInterval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t min_iter = 0;
  std::uint64_t max_iter = 0;
};

/// Per-address staging record.  `reads` (sorted, ring mode only) lists every
/// iteration that stages these bytes, so the ring replay can find the FIRST
/// read after a write — the one with the minimal (binding) chunk distance.
struct StagedByte {
  std::uint32_t size = 0;
  std::uint64_t min_iter = 0;
  std::uint64_t max_iter = 0;
  std::vector<std::uint64_t> reads;
};

}  // namespace

loopir::LoopNest sanitized_instantiate(const loopir::LoopSpec& spec,
                                       std::vector<std::string>* demoted) {
  loopir::LoopSpec copy = spec;
  for (auto& decl : copy.arrays) {
    const bool claimed_ro = decl.read_only || decl.pattern.has_value();
    if (!claimed_ro) continue;
    bool written = false;
    bool used_as_via = false;
    for (const auto& acc : copy.accesses) {
      if (acc.writes() && acc.array == decl.name) written = true;
      if (acc.index_via && *acc.index_via == decl.name) used_as_via = true;
    }
    if (!written) continue;
    // A written index array that still drives indirect accesses cannot be
    // demoted (its materialized values are what the accesses resolve
    // through); let instantiate() reject that pathology loudly.
    if (decl.pattern && used_as_via) continue;
    decl.read_only = false;
    decl.pattern.reset();  // written "index" array becomes a plain rw array
    if (demoted != nullptr) demoted->push_back(decl.name);
  }
  return copy.instantiate();
}

std::vector<ArrayClaim> claims_for(const loopir::LoopSpec& spec,
                                   const loopir::LoopNest& nest) {
  std::vector<ArrayClaim> claims;
  claims.reserve(spec.arrays.size());
  for (loopir::ArrayId id = 0; id < nest.num_arrays(); ++id) {
    const loopir::ArraySpec& arr = nest.array(id);
    ArrayClaim claim;
    claim.name = arr.name;
    claim.base = nest.array_base(id);
    claim.bytes = arr.size_bytes();
    // The claim under test is the SPEC's declaration, not the (possibly
    // demoted) nest's.
    for (const auto& decl : spec.arrays) {
      if (decl.name == arr.name) {
        claim.claimed_ro = decl.read_only || decl.pattern.has_value();
        break;
      }
    }
    claims.push_back(claim);
  }
  return claims;
}

ShadowReport shadow_check(const trace::Trace& trace,
                          const std::vector<ArrayClaim>& claims,
                          const ShadowOptions& opt) {
  ShadowReport report;
  const std::uint64_t total = trace.num_iterations();
  const std::uint64_t n = std::min(total, opt.max_iterations);
  report.truncated = n < total;
  report.iterations_checked = n;
  if (n == 0) return report;

  const core::ChunkPlan plan = core::ChunkPlan::for_iters_per_bytes(
      n, std::max<std::uint64_t>(trace.meta().bytes_per_iteration, 1),
      opt.chunk_bytes);
  report.chunk_iters = plan.iters_per_chunk();

  std::vector<ArrayClaim> sorted = claims;
  std::sort(sorted.begin(), sorted.end(),
            [](const ArrayClaim& a, const ArrayClaim& b) {
              return a.base < b.base;
            });
  auto claim_for = [&](std::uint64_t addr) -> const ArrayClaim* {
    auto it = std::upper_bound(sorted.begin(), sorted.end(), addr,
                               [](std::uint64_t a, const ArrayClaim& c) {
                                 return a < c.base;
                               });
    if (it == sorted.begin()) return nullptr;
    --it;
    return addr < it->base + it->bytes ? &*it : nullptr;
  };

  report.ring_workers = opt.ring_workers;

  // Pass 1: staged footprint (every read of a claimed-read-only extent is a
  // byte range the restructuring helper would copy early) and per-chunk
  // distinct-bytes peaks.
  std::unordered_map<std::uint64_t, StagedByte> staged;
  std::unordered_set<std::uint64_t> chunk_addrs;
  std::uint64_t chunk_bytes_seen = 0;
  std::uint64_t cur_chunk = 0;
  std::vector<loopir::Ref> refs;
  for (std::uint64_t it = 0; it < n; ++it) {
    const std::uint64_t chunk = it / report.chunk_iters;
    if (chunk != cur_chunk) {
      report.peak_chunk_bytes =
          std::max(report.peak_chunk_bytes, chunk_bytes_seen);
      chunk_addrs.clear();
      chunk_bytes_seen = 0;
      cur_chunk = chunk;
    }
    refs.clear();
    trace.refs_for_iteration(it, refs);
    for (const loopir::Ref& ref : refs) {
      ++report.refs_checked;
      if (chunk_addrs.insert(ref.mem.addr).second) {
        chunk_bytes_seen += ref.mem.size;
      }
      const ArrayClaim* claim = claim_for(ref.mem.addr);
      if (claim == nullptr) {
        ++report.out_of_extent_refs;
        continue;
      }
      const bool is_write = ref.mem.type == sim::AccessType::kWrite;
      if (!is_write && claim->claimed_ro) {
        auto [slot, inserted] = staged.try_emplace(
            ref.mem.addr, StagedByte{ref.mem.size, it, it, {}});
        if (!inserted) {
          slot->second.size = std::max(slot->second.size, ref.mem.size);
          slot->second.min_iter = std::min(slot->second.min_iter, it);
          slot->second.max_iter = std::max(slot->second.max_iter, it);
        }
        // `it` is nondecreasing, so the list stays sorted.
        if (opt.ring_workers > 0) slot->second.reads.push_back(it);
      }
    }
  }
  report.peak_chunk_bytes = std::max(report.peak_chunk_bytes, chunk_bytes_seen);

  // Coalesce the staged bytes into disjoint intervals for the write scan.
  std::vector<StagedInterval> intervals;
  intervals.reserve(staged.size());
  for (const auto& [addr, info] : staged) {
    intervals.push_back({addr, addr + info.size, info.min_iter, info.max_iter});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const StagedInterval& a, const StagedInterval& b) {
              return a.lo < b.lo;
            });
  std::vector<StagedInterval> merged;
  for (const StagedInterval& iv : intervals) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
      merged.back().min_iter = std::min(merged.back().min_iter, iv.min_iter);
      merged.back().max_iter = std::max(merged.back().max_iter, iv.max_iter);
    } else {
      merged.push_back(iv);
    }
  }
  for (const StagedInterval& iv : merged) report.staged_bytes += iv.hi - iv.lo;

  // Pass 2: every write against the staged footprint.  A hit is a violation
  // of the read-only claim; it is the cross-chunk flow hazard when a staged
  // read of the same bytes happens in a LATER chunk than the write (the
  // helper copies before the writer chunk has executed).
  // Cross-chunk hazards and plain claim violations are reported under
  // separate caps: the cross-chunk instances are the load-bearing evidence
  // and must not be crowded out by earlier same-chunk hits.
  std::uint64_t reported_cross = 0;
  std::uint64_t reported_plain = 0;
  bool ring_race = false;  // ring mode: any stale pair or flow pair with d < P
  for (std::uint64_t it = 0; it < n && !merged.empty(); ++it) {
    refs.clear();
    trace.refs_for_iteration(it, refs);
    for (const loopir::Ref& ref : refs) {
      if (ref.mem.type != sim::AccessType::kWrite) continue;
      const std::uint64_t lo = ref.mem.addr;
      const std::uint64_t hi = lo + ref.mem.size;
      auto iv = std::upper_bound(merged.begin(), merged.end(), lo,
                                 [](std::uint64_t a, const StagedInterval& s) {
                                   return a < s.lo;
                                 });
      if (iv != merged.begin()) --iv;
      for (; iv != merged.end() && iv->lo < hi; ++iv) {
        if (iv->hi <= lo) continue;
        ++report.violating_writes;
        const ArrayClaim* claim = claim_for(lo);
        const std::string object = claim != nullptr ? claim->name : "";
        const std::uint64_t writer_chunk = it / report.chunk_iters;
        // Prefer the exact per-address staging record over the coalesced
        // interval: the interval's iteration span is the union over many
        // bytes, which would overstate when THESE bytes are re-read.
        std::uint64_t last_read = iv->max_iter;
        const StagedByte* exact = nullptr;
        if (auto found = staged.find(lo); found != staged.end()) {
          exact = &found->second;
          last_read = exact->max_iter;
        }
        const std::uint64_t last_read_chunk = last_read / report.chunk_iters;
        if (opt.ring_workers > 0) {
          // Ring replay: classify against the FIRST staged read after the
          // write; its chunk distance is minimal among later reads, so it
          // alone decides whether THIS ring races on these bytes.
          std::uint64_t first_later = last_read;
          bool has_later = last_read > it;
          if (exact != nullptr && !exact->reads.empty()) {
            auto r = std::upper_bound(exact->reads.begin(),
                                      exact->reads.end(), it);
            has_later = r != exact->reads.end();
            if (has_later) first_later = *r;
          }
          if (!has_later) {
            if (reported_plain < opt.max_reported) {
              ++reported_plain;
              report.diags.warning(
                  "shadow-write-ro",
                  "iteration " + std::to_string(it) + " writes " + hex(lo) +
                      " inside claimed-read-only '" + object +
                      "'; every staged read of those bytes precedes the "
                      "write, so the early copies match sequential values "
                      "on this ring, but the read-only claim is false",
                  object);
            }
            break;
          }
          const std::uint64_t rc = first_later / report.chunk_iters;
          if (rc == writer_chunk) {
            ring_race = true;
            if (reported_plain < opt.max_reported) {
              ++reported_plain;
              report.diags.error(
                  "shadow-write-ro",
                  "trace records a write at iteration " + std::to_string(it) +
                      " to " + hex(lo) + " inside claimed-read-only '" +
                      object + "'; a staged read at iteration " +
                      std::to_string(first_later) +
                      " follows it in the same chunk, and the staged copy "
                      "(taken before the chunk began) is stale at every "
                      "worker count",
                  object);
            }
          } else if (rc - writer_chunk < opt.ring_workers) {
            ring_race = true;
            ++report.cross_chunk_hazards;
            if (reported_cross < opt.max_reported) {
              ++reported_cross;
              report.diags.error(
                  "shadow-hazard-cross-chunk",
                  "on a ring of " + std::to_string(opt.ring_workers) +
                      " workers, the helper for chunk " + std::to_string(rc) +
                      " copies " + hex(lo) + " of '" + object +
                      "' as soon as chunk " +
                      (rc >= opt.ring_workers
                           ? std::to_string(rc - opt.ring_workers)
                           : std::string("(run start)")) +
                      " retires — before chunk " +
                      std::to_string(writer_chunk) +
                      " executes the write at iteration " +
                      std::to_string(it) + "; the staged read at iteration " +
                      std::to_string(first_later) + " observes a stale copy",
                  object);
            }
          } else {
            ++report.ordered_pairs;
          }
          break;  // one diagnostic per write ref is enough
        }
        const bool crosses = last_read > it && last_read_chunk > writer_chunk;
        if (crosses) ++report.cross_chunk_hazards;
        std::uint64_t& reported = crosses ? reported_cross : reported_plain;
        if (reported < opt.max_reported) {
          ++reported;
          if (crosses) {
            report.diags.error(
                "shadow-hazard-cross-chunk",
                "trace confirms the hazard: iteration " + std::to_string(it) +
                    " (chunk " + std::to_string(writer_chunk) + ") writes " +
                    hex(lo) + " inside the staged footprint of '" + object +
                    "', and a staged read of those bytes at iteration " +
                    std::to_string(last_read) + " (chunk " +
                    std::to_string(last_read_chunk) +
                    ") was copied before the writer chunk executed; the "
                    "staged value is stale",
                object);
          } else if (last_read > it) {
            report.diags.error(
                "shadow-write-ro",
                "trace records a write at iteration " + std::to_string(it) +
                    " to " + hex(lo) + " inside claimed-read-only '" + object +
                    "'; a staged read at iteration " + std::to_string(last_read) +
                    " follows it in the same chunk, and the staged copy "
                    "(taken before the chunk began) is stale",
                object);
          } else {
            report.diags.error(
                "shadow-write-ro",
                "trace records a write at iteration " + std::to_string(it) +
                    " to " + hex(lo) + " inside claimed-read-only '" + object +
                    "'; every staged read of those bytes precedes the write, "
                    "so the early copy matches sequential values, but the "
                    "read-only claim is false",
                object);
          }
        }
        break;  // one diagnostic per write ref is enough
      }
    }
  }
  if (report.violating_writes >
      reported_cross + reported_plain + report.ordered_pairs) {
    report.diags.note(
        "shadow-write-ro",
        std::to_string(report.violating_writes - reported_cross -
                       reported_plain - report.ordered_pairs) +
            " further violating writes suppressed");
  }
  if (opt.ring_workers > 0) {
    if (report.ordered_pairs > 0) {
      report.diags.note(
          "shadow-ordered",
          std::to_string(report.ordered_pairs) +
              " cross-chunk flow pair(s) have chunk distance >= " +
              std::to_string(opt.ring_workers) +
              "; token order preserves them on this ring");
    }
    report.restructure_safe = !ring_race;
  } else {
    report.restructure_safe = report.violating_writes == 0;
  }

  if (report.out_of_extent_refs > 0) {
    report.diags.error(
        "shadow-footprint",
        std::to_string(report.out_of_extent_refs) +
            " references land outside every declared array extent; the "
            "static footprint model does not cover this trace");
  }
  if (opt.static_chunk_bound > 0 &&
      report.peak_chunk_bytes > opt.static_chunk_bound) {
    report.footprint_exceeded = true;
    report.diags.error(
        "shadow-footprint",
        "a chunk touches " + std::to_string(report.peak_chunk_bytes) +
            " distinct bytes, exceeding the static per-chunk bound of " +
            std::to_string(opt.static_chunk_bound) +
            "; chunk sizing and buffer capacity reasoning are unsound for "
            "this loop");
  }
  if (report.truncated) {
    report.diags.note("shadow-truncated",
                      "shadow check covered " + std::to_string(n) + " of " +
                          std::to_string(total) +
                          " iterations (max_iterations cap); the verdict is "
                          "sound for the checked prefix only");
  }
  return report;
}

}  // namespace casc::analysis
