#include "casc/analysis/refstream.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "casc/core/chunk.hpp"

namespace casc::analysis {

namespace {

std::string hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

/// A coalesced claimed-read-only region with the iteration range over which
/// it is read (staged); used to classify violating writes by chunk distance.
struct ClaimInterval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // exclusive
  std::uint64_t min_iter = 0;
  std::uint64_t max_iter = 0;
};

}  // namespace

RefStreamReport verify_ref_stream(const core::Workload& workload,
                                  const RefStreamOptions& opt) {
  RefStreamReport report;
  const std::uint64_t total = workload.num_iterations();
  const std::uint64_t iters = std::min(total, opt.max_iterations);
  report.truncated = iters < total;
  report.iterations_checked = iters;

  const core::ChunkPlan plan = core::ChunkPlan::for_iters_per_bytes(
      std::max<std::uint64_t>(1, total), workload.bytes_per_iteration(),
      opt.chunk_bytes);
  const std::uint64_t iters_per_chunk = plan.iters_per_chunk();

  // Pass 1: the claimed read-only footprint — every byte the restructure
  // helper would stage — keyed by start address with the read-iteration range.
  struct Claim {
    std::uint64_t size = 0;
    std::uint64_t min_iter = 0;
    std::uint64_t max_iter = 0;
  };
  std::unordered_map<std::uint64_t, Claim> claimed;
  std::vector<loopir::Ref> refs;
  for (std::uint64_t it = 0; it < iters; ++it) {
    refs.clear();
    workload.refs_for_iteration(it, refs);
    report.refs_checked += refs.size();
    for (const loopir::Ref& ref : refs) {
      if (ref.mem.type == sim::AccessType::kWrite) continue;
      if (!ref.read_only_operand && !ref.is_index_load) continue;
      auto [slot, inserted] = claimed.try_emplace(ref.mem.addr,
                                                  Claim{ref.mem.size, it, it});
      if (inserted) {
        report.claimed_ro_bytes += ref.mem.size;
      } else {
        slot->second.size = std::max<std::uint64_t>(slot->second.size, ref.mem.size);
        slot->second.min_iter = std::min(slot->second.min_iter, it);
        slot->second.max_iter = std::max(slot->second.max_iter, it);
      }
    }
  }

  // Coalesce into disjoint sorted intervals for byte-accurate overlap tests.
  std::vector<ClaimInterval> intervals;
  intervals.reserve(claimed.size());
  for (const auto& [addr, claim] : claimed) {
    intervals.push_back({addr, addr + claim.size, claim.min_iter, claim.max_iter});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const ClaimInterval& a, const ClaimInterval& b) {
              return a.begin < b.begin;
            });
  std::size_t merged = 0;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (merged > 0 && intervals[i].begin <= intervals[merged - 1].end) {
      ClaimInterval& prev = intervals[merged - 1];
      prev.end = std::max(prev.end, intervals[i].end);
      prev.min_iter = std::min(prev.min_iter, intervals[i].min_iter);
      prev.max_iter = std::max(prev.max_iter, intervals[i].max_iter);
    } else {
      intervals[merged++] = intervals[i];
    }
  }
  intervals.resize(merged);

  auto find_overlap = [&](std::uint64_t begin, std::uint64_t end) -> const ClaimInterval* {
    auto it = std::upper_bound(intervals.begin(), intervals.end(), begin,
                               [](std::uint64_t b, const ClaimInterval& iv) {
                                 return b < iv.begin;
                               });
    if (it != intervals.begin()) {
      const ClaimInterval& prev = *(it - 1);
      if (prev.end > begin) return &prev;
    }
    if (it != intervals.end() && it->begin < end) return &*it;
    return nullptr;
  };

  // Pass 2: every write must miss that footprint.
  for (std::uint64_t it = 0; it < iters; ++it) {
    refs.clear();
    workload.refs_for_iteration(it, refs);
    for (const loopir::Ref& ref : refs) {
      if (ref.mem.type != sim::AccessType::kWrite) continue;
      const ClaimInterval* hit = find_overlap(ref.mem.addr, ref.mem.addr + ref.mem.size);
      if (hit == nullptr) continue;
      ++report.violating_writes;
      const std::uint64_t write_chunk = it / iters_per_chunk;
      const bool crosses = hit->min_iter / iters_per_chunk != write_chunk ||
                           hit->max_iter / iters_per_chunk != write_chunk;
      if (crosses) ++report.cross_chunk_hazards;
      if (report.violating_writes <= opt.max_reported) {
        const std::string where =
            "iteration " + std::to_string(it) + " writes " + hex(ref.mem.addr);
        if (crosses) {
          report.diags.error(
              "hazard-cross-chunk",
              where + " inside the claimed read-only footprint staged in another "
                      "chunk (iterations " + std::to_string(hit->min_iter) + ".." +
                  std::to_string(hit->max_iter) +
                  "); the restructure helper would stage a stale value across the "
                  "chunk boundary");
        } else {
          report.diags.error(
              "classify-write-ro",
              where + " inside the claimed read-only footprint; the operand is not "
                      "read-only and must not be staged");
        }
      }
    }
  }
  if (report.violating_writes > opt.max_reported) {
    report.diags.note("preflight-elided",
                      std::to_string(report.violating_writes - opt.max_reported) +
                          " further violating writes elided");
  }
  if (report.truncated) {
    report.diags.warning(
        "preflight-truncated",
        "verified the first " + std::to_string(iters) + " of " +
            std::to_string(total) + " iterations only; verdict covers that prefix");
  }
  report.restructure_safe = report.violating_writes == 0;
  return report;
}

}  // namespace casc::analysis
