#include "casc/analysis/certifier.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <unordered_map>

#include "casc/analysis/passes.hpp"
#include "casc/analysis/shadow.hpp"
#include "casc/common/check.hpp"
#include "casc/core/chunk.hpp"

namespace casc::analysis {

namespace {

std::string hex(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// One staged byte range and the sorted iterations that read it.
struct StagedRec {
  std::uint64_t addr = 0;
  std::uint32_t size = 0;
  std::size_t operand = 0;  ///< index into Certificate::operands
  std::vector<std::uint64_t> reads;
};

std::string stale_schedule(const RaceWitness& w) {
  return "the helper for chunk " + std::to_string(w.read_chunk) + " copies " +
         hex(w.address) + " of '" + w.array +
         "' before the chunk executes; iteration " +
         std::to_string(w.write_iter) +
         " then writes those bytes and iteration " +
         std::to_string(w.read_iter) +
         " reads the stale copy — unsafe at every worker count, including "
         "one";
}

std::string flow_schedule(const RaceWitness& w) {
  const std::uint64_t p = w.workers;
  return "with " + std::to_string(p) + " workers, worker " +
         std::to_string(w.read_chunk % p) + " stages " + hex(w.address) +
         " of '" + w.array + "' for chunk " + std::to_string(w.read_chunk) +
         " as soon as chunk " +
         (w.read_chunk >= p ? std::to_string(w.read_chunk - p)
                            : std::string("(run start)")) +
         " retires — before worker " + std::to_string(w.write_chunk % p) +
         " executes the write at iteration " + std::to_string(w.write_iter) +
         " in chunk " + std::to_string(w.write_chunk) +
         "; the staged read at iteration " + std::to_string(w.read_iter) +
         " then observes the stale copy";
}

/// Keeps the `cap` most damning witnesses: stale pairs first, then flow
/// pairs by ascending worker count (the smallest ring that races).
void consider_witness(std::vector<RaceWitness>& out, RaceWitness w,
                      std::uint64_t cap) {
  auto worse = [](const RaceWitness& a, const RaceWitness& b) {
    if ((a.workers == 0) != (b.workers == 0)) return b.workers == 0;
    if (a.workers != b.workers) return a.workers > b.workers;
    return a.write_iter > b.write_iter;
  };
  if (out.size() < cap) {
    out.push_back(std::move(w));
    return;
  }
  auto it = std::max_element(out.begin(), out.end(), [&](auto& a, auto& b) {
    return worse(b, a);  // max of "worse" ordering = least damning kept
  });
  if (worse(*it, w)) *it = std::move(w);
}

}  // namespace

bool Certificate::certifies_staging(std::uint64_t workers) const {
  if (verdict == "unsupported" || truncated) return false;
  if (stale_pairs > 0) return false;
  if (flow_pairs == 0) return true;
  return workers <= max_safe_workers;
}

std::vector<std::string> Certificate::certified_operands(
    std::uint64_t workers) const {
  std::vector<std::string> names;
  if (verdict == "unsupported" || truncated) return names;
  for (const OperandCertificate& op : operands) {
    if (!op.stage_candidate || op.stale_pairs > 0) continue;
    if (op.flow_pairs > 0 && workers > op.min_flow_chunk_distance) continue;
    names.push_back(op.name);
  }
  return names;
}

Certificate certify(const loopir::LoopSpec& spec, const CertifyOptions& opt) {
  Certificate cert;
  cert.loop = spec.name;
  cert.chunk_bytes = opt.chunk_bytes;
  try {
    const loopir::LoopNest nest = sanitized_instantiate(spec);
    const trace::Trace trace = trace::Trace::capture(nest);
    return certify(spec, trace, claims_for(spec, nest), opt);
  } catch (const common::CheckFailure& e) {
    cert.verdict = "unsupported";
    cert.diags.error("certify-unsupported",
                     std::string("spec cannot be instantiated: ") + e.what());
    return cert;
  }
}

Certificate certify(const loopir::LoopSpec& spec, const trace::Trace& trace,
                    const std::vector<ArrayClaim>& claims,
                    const CertifyOptions& opt) {
  Certificate cert;
  cert.loop = spec.name;
  cert.chunk_bytes = opt.chunk_bytes;

  // Operand table from the classifier; claims from the ORIGINAL spec.
  common::DiagnosticList scratch;
  const std::vector<OperandClass> classes = classify_operands(spec, scratch);
  std::unordered_map<std::string, std::size_t> operand_index;
  bool any_reduction = false;
  for (const OperandClass& c : classes) {
    OperandCertificate op;
    op.name = c.name;
    op.klass = c.kind();
    op.reduce_op = c.reduce_op;
    op.stage_candidate = c.staged();
    if (c.reduction()) any_reduction = true;
    operand_index.emplace(op.name, cert.operands.size());
    cert.operands.push_back(std::move(op));
  }

  const std::uint64_t total = trace.num_iterations();
  const std::uint64_t n = std::min(total, opt.max_iterations);
  cert.iterations = n;
  cert.truncated = n < total;
  if (n == 0) {
    cert.verdict = "unsupported";
    cert.diags.error("certify-unsupported", "trace has no iterations");
    return cert;
  }

  const core::ChunkPlan plan = core::ChunkPlan::for_iters_per_bytes(
      n, std::max<std::uint64_t>(trace.meta().bytes_per_iteration, 1),
      opt.chunk_bytes);
  cert.chunk_iters = plan.iters_per_chunk();
  cert.num_chunks = plan.num_chunks();
  const std::uint64_t chunk_iters = cert.chunk_iters;

  // The trace is captured from the SANITIZED nest (claims demoted so the
  // spec instantiates), but stage candidacy follows the spec's original
  // claims: the certifier exists to judge those claims on the resolved
  // addresses, not to take the demotion's word for it.
  std::vector<ArrayClaim> sorted_claims = claims;
  std::sort(sorted_claims.begin(), sorted_claims.end(),
            [](const ArrayClaim& a, const ArrayClaim& b) {
              return a.base < b.base;
            });
  auto claim_for = [&](std::uint64_t addr) -> const ArrayClaim* {
    auto it = std::upper_bound(sorted_claims.begin(), sorted_claims.end(),
                               addr, [](std::uint64_t a, const ArrayClaim& c) {
                                 return a < c.base;
                               });
    if (it == sorted_claims.begin()) return nullptr;
    --it;
    return addr < it->base + it->bytes ? &*it : nullptr;
  };

  // Pass 1: collect the staged footprint — every read whose address lands in
  // a claimed-read-only extent, with the full sorted list of reading
  // iterations per address.
  std::unordered_map<std::uint64_t, std::size_t> rec_index;
  std::vector<StagedRec> recs;
  std::vector<loopir::Ref> refs;
  for (std::uint64_t it = 0; it < n; ++it) {
    refs.clear();
    trace.refs_for_iteration(it, refs);
    for (const loopir::Ref& ref : refs) {
      ++cert.refs;
      if (ref.mem.type == sim::AccessType::kWrite) continue;
      const ArrayClaim* claim = claim_for(ref.mem.addr);
      if (claim == nullptr || !claim->claimed_ro) continue;
      auto [slot, inserted] = rec_index.try_emplace(ref.mem.addr, recs.size());
      if (inserted) {
        StagedRec rec;
        rec.addr = ref.mem.addr;
        rec.size = ref.mem.size;
        if (auto oi = operand_index.find(claim->name);
            oi != operand_index.end()) {
          rec.operand = oi->second;
        }
        recs.push_back(std::move(rec));
      }
      StagedRec& rec = recs[slot->second];
      rec.size = std::max(rec.size, ref.mem.size);
      rec.reads.push_back(it);  // `it` is nondecreasing: list stays sorted
    }
  }
  for (const StagedRec& rec : recs) {
    cert.operands[rec.operand].staged_bytes += rec.size;
  }
  std::sort(recs.begin(), recs.end(),
            [](const StagedRec& a, const StagedRec& b) {
              return a.addr < b.addr;
            });

  // Pass 2: classify every (write, staged address) pair against the
  // happens-before order.  Reads strictly before the write are anti pairs
  // (safe in every schedule); the FIRST read after the write decides the
  // pair class — its chunk is minimal among later reads, so a same-chunk
  // hit is stale and otherwise its distance is the binding one.
  std::uint64_t min_flow = std::numeric_limits<std::uint64_t>::max();
  for (std::uint64_t it = 0; it < n && !recs.empty(); ++it) {
    refs.clear();
    trace.refs_for_iteration(it, refs);
    for (const loopir::Ref& ref : refs) {
      if (ref.mem.type != sim::AccessType::kWrite) continue;
      const std::uint64_t lo = ref.mem.addr;
      const std::uint64_t hi = lo + ref.mem.size;
      auto rec_it = std::upper_bound(
          recs.begin(), recs.end(), lo,
          [](std::uint64_t a, const StagedRec& r) { return a < r.addr; });
      if (rec_it != recs.begin()) --rec_it;
      for (; rec_it != recs.end() && rec_it->addr < hi; ++rec_it) {
        if (rec_it->addr + rec_it->size <= lo) continue;
        OperandCertificate& op = cert.operands[rec_it->operand];
        auto first_later = std::upper_bound(rec_it->reads.begin(),
                                            rec_it->reads.end(), it);
        if (first_later != rec_it->reads.begin()) {
          ++cert.anti_pairs;
          ++op.anti_pairs;
        }
        if (first_later == rec_it->reads.end()) continue;
        const std::uint64_t read_iter = *first_later;
        const std::uint64_t wc = it / chunk_iters;
        const std::uint64_t rc = read_iter / chunk_iters;
        RaceWitness w;
        w.array = op.name;
        w.write_iter = it;
        w.read_iter = read_iter;
        w.write_chunk = wc;
        w.read_chunk = rc;
        w.address = rec_it->addr;
        if (rc == wc) {
          ++cert.stale_pairs;
          ++op.stale_pairs;
          w.workers = 0;
          w.schedule = stale_schedule(w);
        } else {
          const std::uint64_t d = rc - wc;
          ++cert.flow_pairs;
          ++op.flow_pairs;
          if (op.flow_pairs == 1 || d < op.min_flow_chunk_distance) {
            op.min_flow_chunk_distance = d;
          }
          min_flow = std::min(min_flow, d);
          w.workers = d + 1;
          w.schedule = flow_schedule(w);
        }
        consider_witness(cert.witnesses, std::move(w), opt.max_witnesses);
      }
    }
  }
  if (cert.flow_pairs > 0) cert.max_safe_workers = min_flow;

  for (OperandCertificate& op : cert.operands) {
    op.certified = op.stage_candidate && op.stale_pairs == 0 &&
                   op.flow_pairs == 0 && !cert.truncated;
  }

  // Verdict (unbounded adversary) and diagnostics.
  const bool raced = cert.stale_pairs > 0 || cert.flow_pairs > 0;
  if (raced) {
    cert.verdict = "raced";
  } else if (any_reduction) {
    cert.verdict = "requires-privatization";
  } else {
    cert.verdict = "certified-disjoint";
  }
  std::sort(cert.witnesses.begin(), cert.witnesses.end(),
            [](const RaceWitness& a, const RaceWitness& b) {
              if ((a.workers == 0) != (b.workers == 0)) return a.workers == 0;
              if (a.workers != b.workers) return a.workers < b.workers;
              return a.write_iter < b.write_iter;
            });
  for (const RaceWitness& w : cert.witnesses) {
    cert.diags.error(w.workers == 0 ? "certify-stale" : "certify-raced",
                     w.schedule, w.array);
  }
  if (cert.stale_pairs > 0) {
    cert.diags.note("certify-summary",
                    std::to_string(cert.stale_pairs) +
                        " same-chunk stale pair(s): staging is unsafe at "
                        "every worker count");
  } else if (cert.flow_pairs > 0) {
    cert.diags.note(
        "certify-summary",
        std::to_string(cert.flow_pairs) +
            " cross-chunk flow pair(s) with minimum chunk distance " +
            std::to_string(cert.max_safe_workers) +
            ": staging is sequential-equivalent on rings of up to " +
            std::to_string(cert.max_safe_workers) +
            " worker(s) and raced beyond");
  } else if (cert.verdict == "requires-privatization") {
    for (const OperandCertificate& op : cert.operands) {
      if (op.klass != "reduction") continue;
      cert.diags.note("certify-summary",
                      "staged bytes are write-free, but operand '" + op.name +
                          "' is a commutative '" + op.reduce_op +
                          "' reduction: cascading it needs per-worker "
                          "partial accumulators merged on token hand-off",
                      op.name);
    }
  } else {
    cert.diags.note("certify-summary",
                    "no write overlaps any staged byte: staging is "
                    "sequential-equivalent at every worker count");
  }
  if (cert.truncated) {
    cert.diags.note("certify-truncated",
                    "certificate covers " + std::to_string(n) + " of " +
                        std::to_string(total) +
                        " iterations (max_iterations cap); it does not "
                        "certify staging for the full trip");
  }
  return cert;
}

}  // namespace casc::analysis
