#include "casc/analysis/pipeline_plan.hpp"

#include <algorithm>
#include <sstream>

#include "casc/common/check.hpp"
#include "casc/telemetry/json.hpp"

namespace casc::analysis {

namespace {

/// Arena regions are handed to workers as gather destinations; cache-line
/// alignment keeps neighbouring regions from false-sharing.
constexpr std::uint64_t kRegionAlign = 64;

std::uint64_t align_up(std::uint64_t v) {
  return (v + kRegionAlign - 1) & ~(kRegionAlign - 1);
}

/// Builds the staged slot signature of one stage, mirroring the
/// materializer's staging decisions exactly (materialize.cpp): the nest
/// emits, per access in body order, an index-load ref (always stageable)
/// followed by the element ref (stageable iff it is a read of an array the
/// stage never writes); an `update` access lowers to a read then a write of
/// the same site.  Slots record every input of offset resolution, so equal
/// signatures + equal trip geometry imply byte-identical staged streams.
std::vector<StagedSlot> signature_of(const loopir::PipelineSpec& spec,
                                     const loopir::PipelineSpec::Stage& stage) {
  std::vector<StagedSlot> sig;
  auto emit_site = [&](const loopir::LoopSpec::AccessDecl& acc, bool is_write) {
    if (acc.index_via) {
      const loopir::LoopSpec::ArrayDecl* via = spec.find_array(*acc.index_via);
      StagedSlot idx;
      idx.array = *acc.index_via;
      idx.is_index_load = true;
      idx.elem_size = via != nullptr ? via->elem_size : 4;
      idx.stride = acc.stride;
      idx.offset = acc.offset;
      sig.push_back(std::move(idx));
    }
    if (is_write) return;
    if (stage.writes(acc.array)) return;  // rw in the stage spec: not staged
    const loopir::LoopSpec::ArrayDecl* decl = spec.find_array(acc.array);
    StagedSlot slot;
    slot.array = acc.array;
    slot.elem_size = decl != nullptr ? decl->elem_size : 4;
    slot.stride = acc.stride;
    slot.offset = acc.offset;
    if (acc.index_via) slot.via = *acc.index_via;
    sig.push_back(std::move(slot));
  };
  for (const loopir::LoopSpec::AccessDecl& acc : stage.accesses) {
    if (acc.update) {
      emit_site(acc, /*is_write=*/false);
      emit_site(acc, /*is_write=*/true);
    } else {
      emit_site(acc, acc.is_write);
    }
  }
  return sig;
}

/// The subsequence of `sig` whose source array is `array`.
std::vector<StagedSlot> slots_of(const std::vector<StagedSlot>& sig,
                                 const std::string& array) {
  std::vector<StagedSlot> out;
  for (const StagedSlot& slot : sig) {
    if (slot.array == array) out.push_back(slot);
  }
  return out;
}

}  // namespace

PipelinePlan plan_pipeline(const loopir::PipelineSpec& spec) {
  PipelinePlan plan;
  plan.pipeline = spec.name;

  // ---- per-stage staging facts ----------------------------------------
  plan.stages.reserve(spec.stages.size());
  for (const loopir::PipelineSpec::Stage& stage : spec.stages) {
    StagePlan sp;
    sp.name = stage.name;
    sp.trip = stage.trip;
    sp.step = std::max<std::uint64_t>(1, stage.step);
    sp.iterations = stage.trip == 0 ? 0 : (stage.trip + sp.step - 1) / sp.step;
    sp.staged_signature = signature_of(spec, stage);
    // The helper gathers every staged value as one zero-extended 64-bit
    // word (materialize.hpp), so the stream costs 8 bytes per slot.
    sp.staged_bytes = sp.iterations * sp.staged_signature.size() * 8;
    plan.stages.push_back(std::move(sp));
  }

  // ---- adjacent-pair survival -----------------------------------------
  for (std::size_t k = 0; k + 1 < spec.stages.size(); ++k) {
    const loopir::PipelineSpec::Stage& succ = spec.stages[k + 1];
    const StagePlan& from = plan.stages[k];
    const StagePlan& to = plan.stages[k + 1];
    PairPlan pair;
    pair.from = k;
    pair.to = k + 1;
    const bool same_geometry = from.trip == to.trip && from.step == to.step;

    std::vector<std::string> staged_arrays;
    for (const StagedSlot& slot : from.staged_signature) {
      if (std::find(staged_arrays.begin(), staged_arrays.end(), slot.array) ==
          staged_arrays.end()) {
        staged_arrays.push_back(slot.array);
      }
    }
    for (const std::string& array : staged_arrays) {
      ArraySurvival s;
      s.array = array;
      if (!same_geometry) {
        s.reason = "trip-geometry-differs";
      } else if (succ.writes(array)) {
        s.reason = "written-by-successor";
      } else {
        // A gathered value is only as fresh as the index chain it resolved
        // through: a successor that rewrites the index array re-routes the
        // gather even though the data bytes are untouched.
        std::string written_via;
        for (const StagedSlot& slot : slots_of(from.staged_signature, array)) {
          if (!slot.via.empty() && succ.writes(slot.via)) written_via = slot.via;
        }
        if (!written_via.empty()) {
          s.reason = "index-array-written";
        } else if (slots_of(to.staged_signature, array).empty()) {
          s.reason = "not-staged-by-successor";
        } else if (slots_of(from.staged_signature, array) !=
                   slots_of(to.staged_signature, array)) {
          s.reason = "slot-shape-differs";
        } else {
          s.survives = true;
        }
      }
      pair.arrays.push_back(std::move(s));
    }

    if (from.staged_signature.empty()) {
      pair.reason = "nothing-staged";
    } else if (!same_geometry) {
      pair.reason = "trip-geometry-differs";
    } else {
      for (const ArraySurvival& s : pair.arrays) {
        if (!s.survives) {
          pair.reason = s.array + ": " + s.reason;
          break;
        }
      }
      if (pair.reason.empty()) {
        if (from.staged_signature == to.staged_signature) {
          pair.full_reuse = true;
        } else {
          // Every array survives slot-for-slot but the interleaving (or the
          // slot multiset) differs, so the flat stream cannot be replayed.
          pair.reason = "slot-order-differs";
        }
      }
    }
    plan.pairs.push_back(std::move(pair));
  }

  // ---- arena placement: first-fit over the live-range interval graph ---
  //
  // A maximal run of full-reuse pairs shares one region, gathered by the
  // run's first stage and live until its last; every other stage's region
  // lives only while that stage runs.  First-fit packing lets regions with
  // disjoint live ranges share arena bytes — the cross-loop reuse of the
  // arena itself.
  struct Region {
    std::size_t first, last;
    std::uint64_t offset, bytes;
  };
  std::vector<Region> placed;
  std::size_t k = 0;
  while (k < plan.stages.size()) {
    std::size_t last = k;
    while (last + 1 < plan.stages.size() && plan.pairs[last].full_reuse) ++last;
    const std::uint64_t bytes = plan.stages[k].staged_bytes;
    std::uint64_t offset = 0;
    if (bytes > 0) {
      bool moved = true;
      while (moved) {
        moved = false;
        for (const Region& r : placed) {
          const bool live_overlap = r.first <= last && k <= r.last;
          const bool byte_overlap =
              offset < r.offset + r.bytes && r.offset < offset + bytes;
          if (live_overlap && byte_overlap) {
            offset = align_up(r.offset + r.bytes);
            moved = true;
          }
        }
      }
      placed.push_back({k, last, offset, bytes});
      plan.arena_bytes = std::max(plan.arena_bytes, offset + bytes);
    }
    for (std::size_t s = k; s <= last; ++s) {
      plan.stages[s].region_offset = offset;
      plan.stages[s].region_bytes = bytes;
      plan.stages[s].region_of = k;
    }
    k = last + 1;
  }
  return plan;
}

std::string PipelinePlan::render_text() const {
  std::ostringstream os;
  os << "pipeline " << pipeline << ": " << stages.size() << " stages, "
     << stages_reusing() << " reused stagings, arena " << arena_bytes
     << " bytes\n";
  for (std::size_t k = 0; k < stages.size(); ++k) {
    const StagePlan& s = stages[k];
    os << "  stage " << k << " '" << s.name << "': " << s.iterations
       << " iters, " << s.staged_signature.size() << " staged slots/iter, "
       << s.staged_bytes << " staged bytes, region @" << s.region_offset;
    if (s.region_of != k) os << " (reuses stage " << s.region_of << ")";
    os << "\n";
  }
  for (const PairPlan& p : pairs) {
    os << "  pair " << p.from << "->" << p.to << ": ";
    if (p.full_reuse) {
      os << "reuse staged stream\n";
    } else {
      os << "re-stage (" << p.reason << ")\n";
    }
    for (const ArraySurvival& a : p.arrays) {
      os << "    " << a.array << ": "
         << (a.survives ? "survives" : a.reason) << "\n";
    }
  }
  return os.str();
}

void PipelinePlan::render_json(telemetry::JsonWriter& w) const {
  w.begin_object();
  w.key("pipeline");
  w.value(pipeline);
  w.key("arena_bytes");
  w.value(arena_bytes);
  w.key("stages_reusing");
  w.value(stages_reusing());
  w.key("stages");
  w.begin_array();
  for (std::size_t k = 0; k < stages.size(); ++k) {
    const StagePlan& s = stages[k];
    w.begin_object();
    w.key("name");
    w.value(s.name);
    w.key("iterations");
    w.value(s.iterations);
    w.key("trip");
    w.value(s.trip);
    w.key("step");
    w.value(s.step);
    w.key("staged_bytes");
    w.value(s.staged_bytes);
    w.key("region_offset");
    w.value(s.region_offset);
    w.key("region_bytes");
    w.value(s.region_bytes);
    w.key("region_of");
    w.value(static_cast<std::uint64_t>(s.region_of));
    w.key("signature");
    w.begin_array();
    for (const StagedSlot& slot : s.staged_signature) {
      w.begin_object();
      w.key("array");
      w.value(slot.array);
      w.key("kind");
      w.value(slot.is_index_load ? "index-load"
                                 : (slot.via.empty() ? "affine" : "gather"));
      w.key("elem_size");
      w.value(static_cast<std::uint64_t>(slot.elem_size));
      w.key("stride");
      w.value(slot.stride);
      w.key("offset");
      w.value(slot.offset);
      w.key("via");
      w.value(slot.via);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("pairs");
  w.begin_array();
  for (const PairPlan& p : pairs) {
    w.begin_object();
    w.key("from");
    w.value(static_cast<std::uint64_t>(p.from));
    w.key("to");
    w.value(static_cast<std::uint64_t>(p.to));
    w.key("full_reuse");
    w.value(p.full_reuse);
    w.key("reason");
    w.value(p.reason);
    w.key("arrays");
    w.begin_array();
    for (const ArraySurvival& a : p.arrays) {
      w.begin_object();
      w.key("array");
      w.value(a.array);
      w.key("survives");
      w.value(a.survives);
      w.key("reason");
      w.value(a.reason);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string PipelinePlan::render_json() const {
  std::ostringstream os;
  telemetry::JsonWriter w(os, 2);
  render_json(w);
  os << "\n";
  return os.str();
}

}  // namespace casc::analysis
