// Chunk geometry — the one vocabulary both backends speak.
//
// Cascaded execution partitions an iteration space into contiguous chunks
// (paper §2.2: sized in *bytes touched* so "a 64 KB chunk" means the same
// thing for loops with different per-iteration footprints).  The simulator,
// the analysis passes, and the real-thread runtime all reason about the same
// partition, so the planning types live here in the shared core rather than
// in either backend:
//
//   * ChunkPlan       — an immutable partition of [0, total) into chunks.
//   * Chunker         — strategy interface: what chunk size should the NEXT
//                       run use, and (optionally) learn from a measurement.
//   * FixedChunker    — geometry-derived size, the paper's byte-budget rule.
//   * AdaptiveChunker — measured hill-climbing across repeated runs (the
//                       wave5 pattern); the real runtime's run_auto feeds it.
//
// The offline counterpart, casc::cascade::tune_chunk_size, sweeps a
// simulator to pick a FixedChunker setting; all three roads end in the same
// ChunkPlan, which is what makes sim-vs-rt cross-validation meaningful.
#pragma once

#include <cstdint>

#include "casc/loopir/loop_nest.hpp"

namespace casc::core {

/// An immutable partition of a loop's iteration space into contiguous chunks.
class ChunkPlan {
 public:
  /// Plans chunks that each touch approximately `chunk_bytes` of data,
  /// based on nest.bytes_per_iteration().  At least one iteration per chunk.
  static ChunkPlan for_bytes(const loopir::LoopNest& nest, std::uint64_t chunk_bytes);

  /// Plans chunks of exactly `iters_per_chunk` iterations (last may be short).
  static ChunkPlan for_iters(std::uint64_t total_iters, std::uint64_t iters_per_chunk);

  /// Like for_bytes(), but from raw quantities (any Workload, not just a
  /// LoopNest): chunks of ~`chunk_bytes` given `bytes_per_iteration`.
  static ChunkPlan for_iters_per_bytes(std::uint64_t total_iters,
                                       std::uint64_t bytes_per_iteration,
                                       std::uint64_t chunk_bytes);

  [[nodiscard]] std::uint64_t total_iters() const noexcept { return total_iters_; }
  [[nodiscard]] std::uint64_t iters_per_chunk() const noexcept { return iters_per_chunk_; }
  [[nodiscard]] std::uint64_t num_chunks() const noexcept { return num_chunks_; }

  /// Half-open iteration range [begin, end) of chunk `c`.
  struct Range {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
  };
  [[nodiscard]] Range chunk(std::uint64_t c) const;

 private:
  ChunkPlan(std::uint64_t total, std::uint64_t per_chunk);

  std::uint64_t total_iters_;
  std::uint64_t iters_per_chunk_;
  std::uint64_t num_chunks_;
};

/// Strategy interface: the chunk size the next run should use.  Stateless
/// implementations (FixedChunker) always answer the same; learning ones
/// (AdaptiveChunker) move the answer after each record()ed measurement.
class Chunker {
 public:
  virtual ~Chunker() = default;

  /// Chunk size (iterations) for the next run.
  [[nodiscard]] virtual std::uint64_t iters_per_chunk() const = 0;

  /// Feedback hook: a run over `total_iters` iterations at the size
  /// iters_per_chunk() last returned took `seconds`.  Default: ignore.
  virtual void record(double seconds, std::uint64_t total_iters);

  /// The partition the next run would use.
  [[nodiscard]] ChunkPlan plan(std::uint64_t total_iters) const {
    return ChunkPlan::for_iters(total_iters, iters_per_chunk());
  }
};

/// Fixed chunk geometry, derived once from the paper's byte-budget rule (or
/// set directly in iterations).
class FixedChunker final : public Chunker {
 public:
  explicit FixedChunker(std::uint64_t iters_per_chunk);

  /// The §2.2 rule: ~`chunk_bytes` of touched data per chunk.
  static FixedChunker for_bytes(std::uint64_t bytes_per_iteration,
                                std::uint64_t chunk_bytes);
  static FixedChunker for_bytes(const loopir::LoopNest& nest,
                                std::uint64_t chunk_bytes);

  [[nodiscard]] std::uint64_t iters_per_chunk() const noexcept override {
    return iters_;
  }

 private:
  std::uint64_t iters_;
};

/// Deterministic hill-climber over power-of-two chunk sizes for repeated
/// invocations of the same loop on real hardware (the wave5 pattern: ~5000
/// calls of PARMVR).  Feed it the measured duration of each run; query
/// current() — equivalently iters_per_chunk() — for the size to use next.
/// It probes up/down and settles on the locally best size, re-probing
/// periodically so it can follow slow drift.
class AdaptiveChunker final : public Chunker {
 public:
  /// All sizes in iterations; bounds are clamped to powers of two.
  AdaptiveChunker(std::uint64_t initial, std::uint64_t min_iters,
                  std::uint64_t max_iters);

  /// Chunk size (iterations) to use for the next run.
  [[nodiscard]] std::uint64_t current() const noexcept { return current_; }

  [[nodiscard]] std::uint64_t iters_per_chunk() const noexcept override {
    return current_;
  }

  /// Records that a run over `total_iters` iterations with chunk current()
  /// took `seconds`.  Adjusts the next chunk size.
  void record(double seconds, std::uint64_t total_iters) override;

  /// Number of direction flips so far (diagnostic; a settled climber flips
  /// rarely).
  [[nodiscard]] unsigned reversals() const noexcept { return reversals_; }

 private:
  static std::uint64_t to_pow2(std::uint64_t v) noexcept;

  std::uint64_t min_;
  std::uint64_t max_;
  std::uint64_t current_;
  double best_throughput_ = 0.0;  ///< iters/sec at `current_` before the probe
  int direction_ = +1;            ///< +1 = growing, -1 = shrinking
  unsigned reversals_ = 0;
};

}  // namespace casc::core
