// The backends' shared view of a workload.  A cascade backend — the
// simulator, the trace replayer, or the real-thread bridge — needs only five
// things from whatever it executes: the iteration count, per-iteration
// compute costs, the classified reference stream of each iteration, the §2.2
// bytes-per-iteration estimate, and the address ranges to pre-touch for
// start states.  Abstracting them here (below both backends) lets the same
// loop description flow through lint, simulation, and real execution — and
// lets trace capture work without dragging in either backend.
#pragma once

#include <cstdint>
#include <vector>

#include "casc/loopir/loop_nest.hpp"

namespace casc::core {

/// A contiguous data region a workload touches (for start-state warming).
struct AddressRange {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
};

/// Abstract workload interface consumed by the cascade backends.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::uint64_t num_iterations() const = 0;
  [[nodiscard]] virtual std::uint32_t compute_cycles() const = 0;
  [[nodiscard]] virtual std::uint32_t restructured_compute_cycles() const = 0;
  /// Estimated bytes touched per iteration (chunk sizing, paper §2.2).
  [[nodiscard]] virtual std::uint64_t bytes_per_iteration() const = 0;
  /// Sequential-buffer bytes one iteration stages under restructuring.
  [[nodiscard]] virtual std::uint64_t buffer_bytes_per_iteration() const = 0;
  /// Appends iteration `it`'s classified references to `out`.
  virtual void refs_for_iteration(std::uint64_t it,
                                  std::vector<loopir::Ref>& out) const = 0;
  /// Data regions for start-state warming (distributed/warm starts).
  [[nodiscard]] virtual std::vector<AddressRange> data_ranges() const = 0;
};

/// Workload view over a finalized LoopNest (non-owning).
class LoopWorkload final : public Workload {
 public:
  explicit LoopWorkload(const loopir::LoopNest& nest);

  [[nodiscard]] std::uint64_t num_iterations() const override;
  [[nodiscard]] std::uint32_t compute_cycles() const override;
  [[nodiscard]] std::uint32_t restructured_compute_cycles() const override;
  [[nodiscard]] std::uint64_t bytes_per_iteration() const override;
  [[nodiscard]] std::uint64_t buffer_bytes_per_iteration() const override;
  void refs_for_iteration(std::uint64_t it,
                          std::vector<loopir::Ref>& out) const override;
  [[nodiscard]] std::vector<AddressRange> data_ranges() const override;

 private:
  const loopir::LoopNest* nest_;
};

}  // namespace casc::core
