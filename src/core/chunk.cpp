#include "casc/core/chunk.hpp"

#include <algorithm>

#include "casc/common/check.hpp"

namespace casc::core {

void Chunker::record(double seconds, std::uint64_t total_iters) {
  (void)seconds;
  (void)total_iters;
}

ChunkPlan::ChunkPlan(std::uint64_t total, std::uint64_t per_chunk)
    : total_iters_(total), iters_per_chunk_(per_chunk) {
  CASC_CHECK(total_iters_ > 0, "cannot plan an empty iteration space");
  CASC_CHECK(iters_per_chunk_ > 0, "chunk must contain at least one iteration");
  num_chunks_ = (total_iters_ + iters_per_chunk_ - 1) / iters_per_chunk_;
}

ChunkPlan ChunkPlan::for_bytes(const loopir::LoopNest& nest, std::uint64_t chunk_bytes) {
  return for_iters_per_bytes(nest.num_iterations(), nest.bytes_per_iteration(),
                             chunk_bytes);
}

ChunkPlan ChunkPlan::for_iters_per_bytes(std::uint64_t total_iters,
                                         std::uint64_t bytes_per_iteration,
                                         std::uint64_t chunk_bytes) {
  CASC_CHECK(chunk_bytes > 0, "chunk size must be positive");
  const std::uint64_t per_iter = std::max<std::uint64_t>(1, bytes_per_iteration);
  const std::uint64_t iters = std::max<std::uint64_t>(1, chunk_bytes / per_iter);
  return ChunkPlan(total_iters, iters);
}

ChunkPlan ChunkPlan::for_iters(std::uint64_t total_iters, std::uint64_t iters_per_chunk) {
  return ChunkPlan(total_iters, iters_per_chunk);
}

ChunkPlan::Range ChunkPlan::chunk(std::uint64_t c) const {
  CASC_CHECK(c < num_chunks_, "chunk index out of range");
  const std::uint64_t begin = c * iters_per_chunk_;
  return {begin, std::min(begin + iters_per_chunk_, total_iters_)};
}

FixedChunker::FixedChunker(std::uint64_t iters_per_chunk) : iters_(iters_per_chunk) {
  CASC_CHECK(iters_ > 0, "chunk must contain at least one iteration");
}

FixedChunker FixedChunker::for_bytes(std::uint64_t bytes_per_iteration,
                                     std::uint64_t chunk_bytes) {
  CASC_CHECK(chunk_bytes > 0, "chunk size must be positive");
  const std::uint64_t per_iter = std::max<std::uint64_t>(1, bytes_per_iteration);
  return FixedChunker(std::max<std::uint64_t>(1, chunk_bytes / per_iter));
}

FixedChunker FixedChunker::for_bytes(const loopir::LoopNest& nest,
                                     std::uint64_t chunk_bytes) {
  return for_bytes(nest.bytes_per_iteration(), chunk_bytes);
}

std::uint64_t AdaptiveChunker::to_pow2(std::uint64_t v) noexcept {
  std::uint64_t p = 1;
  while (p < v && p < (1ull << 62)) p <<= 1;
  return p;
}

AdaptiveChunker::AdaptiveChunker(std::uint64_t initial, std::uint64_t min_iters,
                                 std::uint64_t max_iters)
    : min_(to_pow2(min_iters)), max_(to_pow2(max_iters)) {
  CASC_CHECK(min_iters > 0, "minimum chunk must be positive");
  CASC_CHECK(min_ <= max_, "min chunk exceeds max chunk");
  current_ = std::clamp(to_pow2(initial), min_, max_);
}

void AdaptiveChunker::record(double seconds, std::uint64_t total_iters) {
  CASC_CHECK(seconds > 0.0, "a run cannot take zero time");
  CASC_CHECK(total_iters > 0, "a run must cover at least one iteration");
  const double throughput = static_cast<double>(total_iters) / seconds;

  if (throughput >= best_throughput_) {
    // The last move (or the starting point) helped: keep going.
    best_throughput_ = throughput;
  } else {
    // The last move hurt: turn around.  The climber re-crosses the optimum
    // and oscillates gently around it, which also lets it track drift.
    direction_ = -direction_;
    ++reversals_;
    best_throughput_ = throughput;
  }
  const std::uint64_t next =
      direction_ > 0 ? std::min(max_, current_ << 1) : std::max(min_, current_ >> 1);
  current_ = std::max(min_, next);
}

}  // namespace casc::core
