#include "casc/core/workload.hpp"

#include "casc/common/check.hpp"

namespace casc::core {

LoopWorkload::LoopWorkload(const loopir::LoopNest& nest) : nest_(&nest) {
  CASC_CHECK(nest.finalized(), "loop nest must be finalized");
}

std::uint64_t LoopWorkload::num_iterations() const { return nest_->num_iterations(); }

std::uint32_t LoopWorkload::compute_cycles() const { return nest_->compute_cycles(); }

std::uint32_t LoopWorkload::restructured_compute_cycles() const {
  return nest_->restructured_compute_cycles();
}

std::uint64_t LoopWorkload::bytes_per_iteration() const {
  return nest_->bytes_per_iteration();
}

std::uint64_t LoopWorkload::buffer_bytes_per_iteration() const {
  std::uint64_t bytes = 0;
  for (const loopir::AccessSpec& acc : nest_->accesses()) {
    const loopir::ArraySpec& target = nest_->array(acc.array);
    if (target.read_only && !acc.is_write) {
      bytes += target.elem_size;  // the operand value itself is staged
    } else if (acc.index_via) {
      bytes += 4;  // resolved index for a read-write target
    }
  }
  return bytes;
}

void LoopWorkload::refs_for_iteration(std::uint64_t it,
                                      std::vector<loopir::Ref>& out) const {
  nest_->refs_for_iteration(it, out);
}

std::vector<AddressRange> LoopWorkload::data_ranges() const {
  std::vector<AddressRange> ranges;
  ranges.reserve(nest_->num_arrays());
  for (loopir::ArrayId a = 0; a < nest_->num_arrays(); ++a) {
    ranges.push_back({nest_->array_base(a), nest_->array(a).size_bytes()});
  }
  return ranges;
}

}  // namespace casc::core
