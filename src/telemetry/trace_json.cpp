#include "casc/telemetry/trace_json.hpp"

#include <fstream>
#include <string>

#include "casc/common/check.hpp"
#include "casc/telemetry/json.hpp"

namespace casc::telemetry {

void TraceWriter::set_process_name(std::uint32_t pid, std::string name) {
  meta_.push_back({pid, 0, false, std::move(name)});
}

void TraceWriter::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                  std::string name) {
  meta_.push_back({pid, tid, true, std::move(name)});
}

void TraceWriter::append_event_log(const EventLog& log, std::uint32_t pid,
                                   const std::string& process_name) {
  set_process_name(pid, process_name);
  for (unsigned w = 0; w < log.num_workers(); ++w) {
    set_thread_name(pid, w, "worker " + std::to_string(w));
  }

  // Per-worker begin/end pairing.  Events within one ring are in append
  // order (single writer), so a simple last-begin match suffices.
  struct OpenPhase {
    bool open = false;
    std::uint64_t ns = 0;
    std::uint64_t chunk = 0;
  };
  std::vector<OpenPhase> open_helper(log.num_workers());
  std::vector<OpenPhase> open_exec(log.num_workers());

  const auto close_phase = [&](std::vector<OpenPhase>& open, unsigned w,
                               const char* name, const char* cat,
                               std::uint64_t end_ns) {
    if (!open[w].open) return;
    TraceSlice s;
    s.name = std::string(name) + " chunk " + std::to_string(open[w].chunk);
    s.category = cat;
    s.pid = pid;
    s.tid = w;
    s.ts_us = static_cast<double>(open[w].ns) / 1000.0;
    s.dur_us = static_cast<double>(end_ns - open[w].ns) / 1000.0;
    add_slice(std::move(s));
    open[w].open = false;
  };

  for (const Event& e : log.snapshot()) {
    const unsigned w = e.worker < log.num_workers() ? e.worker : log.num_workers() - 1;
    switch (e.kind) {
      case EventKind::kHelperBegin:
        close_phase(open_helper, w, "helper", "helper", e.ns);  // defensive
        open_helper[w] = {true, e.ns, e.chunk};
        break;
      case EventKind::kHelperEnd:
        close_phase(open_helper, w, "helper", "helper", e.ns);
        break;
      case EventKind::kExecBegin:
        close_phase(open_exec, w, "exec", "exec", e.ns);  // defensive
        open_exec[w] = {true, e.ns, e.chunk};
        break;
      case EventKind::kExecEnd:
        close_phase(open_exec, w, "exec", "exec", e.ns);
        break;
      case EventKind::kAbort:
      case EventKind::kWatchdog:
      case EventKind::kRunBegin:
      case EventKind::kRunEnd:
      case EventKind::kHelperFault:
      case EventKind::kReclaim:
      case EventKind::kQuarantine:
      case EventKind::kRetry:
      case EventKind::kDemote: {
        const bool degrade = e.kind >= EventKind::kHelperFault;
        TraceInstant i;
        // Degradation instants carry the chunk (the whole point is locating
        // the fault); control instants keep their historical bare names.
        i.name = degrade
                     ? std::string(to_string(e.kind)) + " chunk " + std::to_string(e.chunk)
                     : to_string(e.kind);
        i.category = degrade ? "degrade" : "control";
        i.pid = pid;
        i.tid = w;
        i.ts_us = static_cast<double>(e.ns) / 1000.0;
        add_instant(std::move(i));
        break;
      }
      case EventKind::kTokenAcquire:
      case EventKind::kTokenPass:
        // Token motion is visible as the boundary between exec slices; as
        // dedicated instants they only clutter the track.
        break;
    }
  }

  // Unpaired begins: the phase was cut short (abort/watchdog) before its end
  // event, or the end was dropped.  Emit zero-length slices as evidence.
  for (unsigned w = 0; w < log.num_workers(); ++w) {
    close_phase(open_helper, w, "helper", "helper", open_helper[w].ns);
    close_phase(open_exec, w, "exec", "exec", open_exec[w].ns);
  }
}

void TraceWriter::write(std::ostream& os) const {
  JsonWriter w(os, 1);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const Meta& m : meta_) {
    w.begin_object();
    w.key("ph");
    w.value("M");
    w.key("name");
    w.value(m.is_thread ? "thread_name" : "process_name");
    w.key("pid");
    w.value(static_cast<std::uint64_t>(m.pid));
    if (m.is_thread) {
      w.key("tid");
      w.value(static_cast<std::uint64_t>(m.tid));
    }
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(m.name);
    w.end_object();
    w.end_object();
  }
  for (const TraceSlice& s : slices_) {
    w.begin_object();
    w.key("ph");
    w.value("X");
    w.key("name");
    w.value(s.name);
    w.key("cat");
    w.value(s.category.empty() ? "casc" : s.category);
    w.key("pid");
    w.value(static_cast<std::uint64_t>(s.pid));
    w.key("tid");
    w.value(static_cast<std::uint64_t>(s.tid));
    w.key("ts");
    w.value(s.ts_us);
    w.key("dur");
    w.value(s.dur_us);
    w.end_object();
  }
  for (const TraceInstant& i : instants_) {
    w.begin_object();
    w.key("ph");
    w.value("i");
    w.key("s");
    w.value("t");  // thread-scoped instant
    w.key("name");
    w.value(i.name);
    w.key("cat");
    w.value(i.category.empty() ? "casc" : i.category);
    w.key("pid");
    w.value(static_cast<std::uint64_t>(i.pid));
    w.key("tid");
    w.value(static_cast<std::uint64_t>(i.tid));
    w.key("ts");
    w.value(i.ts_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

void TraceWriter::save(const std::string& path) const {
  std::ofstream out(path);
  CASC_CHECK(out.good(), "cannot open trace output file '" + path + "'");
  write(out);
  CASC_CHECK(out.good(), "failed writing trace output file '" + path + "'");
}

}  // namespace casc::telemetry
