#include "casc/telemetry/json.hpp"

#include <cmath>
#include <cstdio>

#include "casc/common/check.hpp"

namespace casc::telemetry {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    for (int s = 0; s < indent_; ++s) os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level document value
  if (stack_.back() == Scope::kObject) {
    CASC_CHECK(key_pending_, "JsonWriter: value inside an object requires key()");
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::key(std::string_view k) {
  CASC_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
             "JsonWriter: key() outside an object");
  CASC_CHECK(!key_pending_, "JsonWriter: consecutive key() calls");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  os_ << '"' << escape(k) << "\":" << (indent_ > 0 ? " " : "");
  key_pending_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  CASC_CHECK(!stack_.empty() && stack_.back() == Scope::kObject && !key_pending_,
             "JsonWriter: unbalanced end_object()");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  CASC_CHECK(!stack_.empty() && stack_.back() == Scope::kArray,
             "JsonWriter: unbalanced end_array()");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
}

void JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << escape(v) << '"';
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN
    os_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

void JsonWriter::raw(std::string_view json) {
  before_value();
  os_ << json;
}

}  // namespace casc::telemetry
