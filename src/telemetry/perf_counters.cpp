#include "casc/telemetry/perf_counters.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace casc::telemetry {

namespace {

bool disabled_by_env() noexcept {
  const char* env = std::getenv("CASC_NO_PERF");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

const char* to_string(Counter counter) noexcept {
  switch (counter) {
    case Counter::kCycles:
      return "cycles";
    case Counter::kInstructions:
      return "instructions";
    case Counter::kL1DMisses:
      return "l1d_misses";
    case Counter::kLLCMisses:
      return "llc_misses";
    case Counter::kTaskClockNs:
      return "task_clock_ns";
  }
  return "?";
}

CounterValue CounterSample::get(Counter counter) const noexcept {
  for (const CounterValue& v : values) {
    if (v.counter == counter) return v;
  }
  CounterValue missing;
  missing.counter = counter;
  return missing;
}

std::vector<Counter> PerfCounters::default_counters() {
  return {Counter::kCycles, Counter::kInstructions, Counter::kL1DMisses,
          Counter::kLLCMisses, Counter::kTaskClockNs};
}

bool PerfCounters::platform_supported() noexcept {
#if defined(__linux__)
  return !disabled_by_env();
#else
  return false;
#endif
}

#if defined(__linux__)

namespace {

/// perf_event_attr type/config for one Counter.
void fill_attr(Counter counter, perf_event_attr* attr) noexcept {
  std::memset(attr, 0, sizeof(*attr));
  attr->size = sizeof(*attr);
  switch (counter) {
    case Counter::kCycles:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case Counter::kInstructions:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case Counter::kL1DMisses:
      attr->type = PERF_TYPE_HW_CACHE;
      attr->config = PERF_COUNT_HW_CACHE_L1D |
                     (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                     (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case Counter::kLLCMisses:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_CACHE_MISSES;
      break;
    case Counter::kTaskClockNs:
      attr->type = PERF_TYPE_SOFTWARE;
      attr->config = PERF_COUNT_SW_TASK_CLOCK;
      break;
  }
  attr->disabled = 1;  // armed by start(); group members follow the leader
  attr->exclude_kernel = 1;
  attr->exclude_hv = 1;
  attr->read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                      PERF_FORMAT_TOTAL_TIME_RUNNING;
}

int perf_event_open_syscall(perf_event_attr* attr, int group_fd) noexcept {
  // pid = 0 / cpu = -1: this thread, any CPU.
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, attr, 0, -1, group_fd, 0ul));
}

}  // namespace

PerfCounters::PerfCounters(std::vector<Counter> counters)
    : requested_(std::move(counters)) {
  if (disabled_by_env()) {
    unavailable_reason_ = "disabled by CASC_NO_PERF";
    return;
  }
  int first_errno = 0;
  for (Counter counter : requested_) {
    perf_event_attr attr;
    fill_attr(counter, &attr);
    const int group_fd = fds_.empty() ? -1 : fds_.front();
    const int fd = perf_event_open_syscall(&attr, group_fd);
    if (fd < 0) {
      if (first_errno == 0) first_errno = errno;
      continue;  // e.g. ENOENT: this PMU lacks the event; keep the rest
    }
    fds_.push_back(fd);
    opened_.push_back(counter);
  }
  if (fds_.empty()) {
    unavailable_reason_ =
        std::string("perf_event_open failed: ") +
        (first_errno != 0 ? std::strerror(first_errno) : "no counters requested");
  }
}

PerfCounters::~PerfCounters() {
  for (int fd : fds_) ::close(fd);
}

void PerfCounters::start() noexcept {
  if (!available()) return;
  ::ioctl(fds_.front(), PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(fds_.front(), PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfCounters::stop() noexcept {
  if (!available()) return;
  ::ioctl(fds_.front(), PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

CounterSample PerfCounters::read() const {
  CounterSample sample;
  sample.values.reserve(requested_.size());
  for (Counter counter : requested_) {
    CounterValue v;
    v.counter = counter;
    sample.values.push_back(v);  // invalid until filled below
  }
  if (!available()) return sample;

  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  std::vector<std::uint64_t> buf(3 + fds_.size());
  const ssize_t want =
      static_cast<ssize_t>(buf.size() * sizeof(std::uint64_t));
  const ssize_t got = ::read(fds_.front(), buf.data(), static_cast<size_t>(want));
  if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return sample;
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  const double scale =
      (running > 0 && enabled > running)
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  for (std::uint64_t i = 0; i < nr && i < opened_.size(); ++i) {
    for (CounterValue& v : sample.values) {
      if (v.counter != opened_[i]) continue;
      v.valid = true;
      v.value = static_cast<std::uint64_t>(static_cast<double>(buf[3 + i]) * scale);
      v.scaling = enabled > 0
                      ? static_cast<double>(running) / static_cast<double>(enabled)
                      : 0.0;
      break;
    }
  }
  return sample;
}

#else  // !defined(__linux__)

PerfCounters::PerfCounters(std::vector<Counter> counters)
    : requested_(std::move(counters)) {
  unavailable_reason_ = disabled_by_env() ? "disabled by CASC_NO_PERF"
                                          : "perf_event_open is Linux-only";
}

PerfCounters::~PerfCounters() = default;

void PerfCounters::start() noexcept {}
void PerfCounters::stop() noexcept {}

CounterSample PerfCounters::read() const {
  CounterSample sample;
  sample.values.reserve(requested_.size());
  for (Counter counter : requested_) {
    CounterValue v;
    v.counter = counter;
    sample.values.push_back(v);
  }
  return sample;
}

#endif

}  // namespace casc::telemetry
