// Lock-free fixed-capacity event ring for per-worker phase timelines.
//
// The cascade runtime is latency-sensitive: a worker records a phase event
// (token acquire, exec begin, helper end, ...) on every chunk, and the hot
// path must never block, allocate, or contend on a shared lock.  EventRing is
// a power-of-two circular buffer of cache-line-friendly slots written with
// plain atomics:
//
//   * append() claims a position with one fetch_add, writes the payload, and
//     publishes it with a release store of the slot's ticket — wait-free.
//   * The ring never refuses a write: once full it overwrites the oldest
//     event (drop-oldest) and dropped() reports how many were overwritten.
//   * snapshot() can run at any time, even while writers are active (the
//     watchdog and state-dump paths read rings of live workers).  It
//     validates each slot's ticket before and after reading the payload and
//     skips slots that were overwritten mid-read, so it returns only events
//     that were completely published.  All slot fields are atomics — the
//     ring is ThreadSanitizer-clean by construction, with no "benign race"
//     carve-outs.
//
// The intended topology is one ring per worker (single writer), which makes
// snapshots exact.  Multiple concurrent writers on one ring are memory-safe
// and TSan-clean too; under a same-slot wrap race the nanosecond field may
// pair with a neighbouring generation's payload, which a diagnostic consumer
// tolerates (the packed payload word itself is always internally consistent
// because it is a single atomic).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "casc/common/align.hpp"
#include "casc/common/check.hpp"

namespace casc::telemetry {

/// Phase events emitted by the cascade runtime (and anything else that wants
/// a timeline).  Values are stable: they appear in serialized traces.
enum class EventKind : std::uint8_t {
  kRunBegin = 0,      ///< run() accepted a job (worker 0)
  kRunEnd = 1,        ///< run() finished, successfully or not (worker 0)
  kHelperBegin = 2,   ///< helper phase entered for `chunk`
  kHelperEnd = 3,     ///< helper phase left (completed or jumped out)
  kTokenAcquire = 4,  ///< await() returned with the token for `chunk`
  kExecBegin = 5,     ///< execution phase entered for `chunk`
  kExecEnd = 6,       ///< execution phase completed for `chunk`
  kTokenPass = 7,     ///< token released to `chunk + 1`
  kAbort = 8,         ///< this worker poisoned the cascade (chunk = culprit)
  kWatchdog = 9,      ///< the watchdog fired (chunk = token at expiry)
  // Fail-soft degradation events (docs/RUNTIME.md "Failure semantics").
  kHelperFault = 10,  ///< a helper threw or stalled out; run continues degraded
  kReclaim = 11,      ///< another worker reclaimed and executed `chunk` in-place
  kQuarantine = 12,   ///< this worker's helper was permanently quarantined
  kRetry = 13,        ///< a backed-off helper was retried at `chunk`
  kDemote = 14,       ///< budget demotion (chunk = new level: 1 = no helpers,
                      ///< 2 = sequential)
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

/// One recorded event.  `ns` is nanoseconds since the owning log's epoch.
struct Event {
  std::uint64_t ns = 0;
  std::uint64_t chunk = 0;
  EventKind kind = EventKind::kRunBegin;
  std::uint16_t worker = 0;
};

namespace detail {

/// Packs kind/worker/chunk into one word so the payload publishes atomically.
/// Chunk indices are truncated to 40 bits (~10^12 chunks — far beyond any
/// real run; RunStats holds the authoritative 64-bit counts).
constexpr std::uint64_t kChunkBits = 40;
constexpr std::uint64_t kChunkMask = (std::uint64_t{1} << kChunkBits) - 1;

constexpr std::uint64_t pack_event(EventKind kind, std::uint16_t worker,
                                   std::uint64_t chunk) noexcept {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (static_cast<std::uint64_t>(worker) << kChunkBits) | (chunk & kChunkMask);
}

constexpr EventKind packed_kind(std::uint64_t packed) noexcept {
  return static_cast<EventKind>(packed >> 56);
}

constexpr std::uint16_t packed_worker(std::uint64_t packed) noexcept {
  return static_cast<std::uint16_t>((packed >> kChunkBits) & 0xFFFF);
}

constexpr std::uint64_t packed_chunk(std::uint64_t packed) noexcept {
  return packed & kChunkMask;
}

}  // namespace detail

/// Fixed-capacity drop-oldest ring; see the header comment for guarantees.
class EventRing {
 public:
  /// `capacity` must be a power of two (>= 2).
  explicit EventRing(std::size_t capacity = 4096) : slots_(capacity) {
    CASC_CHECK(common::is_pow2(capacity) && capacity >= 2,
               "EventRing capacity must be a power of two >= 2");
    mask_ = capacity - 1;
  }

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Wait-free append; never fails (overwrites the oldest event when full).
  void append(std::uint64_t ns, EventKind kind, std::uint16_t worker,
              std::uint64_t chunk) noexcept {
    const std::uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[pos & mask_];
    s.ns.store(ns, std::memory_order_relaxed);
    s.packed.store(detail::pack_event(kind, worker, chunk), std::memory_order_relaxed);
    // Publishing the ticket last (release) lets snapshot() know the payload
    // stores above are complete once it observes pos + 1.
    s.ticket.store(pos + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Total events ever appended.
  [[nodiscard]] std::uint64_t appended() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// Events lost to drop-oldest overwrites.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t n = appended();
    return n > capacity() ? n - capacity() : 0;
  }

  /// Copies the (up to `capacity()`) newest fully-published events, oldest
  /// first.  Safe concurrently with writers; events overwritten mid-read are
  /// skipped rather than returned torn.
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::vector<Event> out;
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t begin = head > capacity() ? head - capacity() : 0;
    out.reserve(static_cast<std::size_t>(head - begin));
    for (std::uint64_t pos = begin; pos < head; ++pos) {
      const Slot& s = slots_[pos & mask_];
      if (s.ticket.load(std::memory_order_acquire) != pos + 1) continue;
      Event e;
      e.ns = s.ns.load(std::memory_order_relaxed);
      const std::uint64_t packed = s.packed.load(std::memory_order_relaxed);
      // Revalidate: if a wrapping writer claimed this slot while we were
      // reading, the payload may belong to the newer generation — drop it.
      if (s.ticket.load(std::memory_order_acquire) != pos + 1) continue;
      e.kind = detail::packed_kind(packed);
      e.worker = detail::packed_worker(packed);
      e.chunk = detail::packed_chunk(packed);
      out.push_back(e);
    }
    return out;
  }

 private:
  /// Slot fields are individually atomic so concurrent snapshot() is
  /// race-free; CacheAligned is deliberately NOT used here — a ring is
  /// single-writer, so padding every slot to 64 bytes would only waste the
  /// writer's own cache.
  struct Slot {
    std::atomic<std::uint64_t> ticket{0};  ///< pos + 1 once published
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> packed{0};
  };

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  alignas(common::kCacheLineSize) std::atomic<std::uint64_t> head_{0};
};

}  // namespace casc::telemetry
