// Hardware performance counters via Linux perf_event_open(2).
//
// The paper's evaluation is counter-driven (loop cycles, L1/L2 miss counts
// read from the Pentium Pro and R10000 counter registers); PerfCounters is
// this repro's equivalent for the real-thread runtime and benches.  Design
// points:
//
//   * Counters are opened as one group (leader = first counter that opens)
//     so all members are scheduled onto the PMU together and one read(2)
//     returns a consistent snapshot.
//   * Reads carry TIME_ENABLED/TIME_RUNNING, and read() scales each value by
//     enabled/running to correct for kernel multiplexing when the group
//     shares the PMU with other sessions.
//   * Failure is a mode, not an error.  Restricted kernels
//     (perf_event_paranoid >= 3, seccomp, ENOSYS), VMs without a PMU
//     (ENOENT for hardware events), and non-Linux hosts all degrade to
//     available() == false (or to a subset of counters), with the reason
//     preserved; callers emit "counters unavailable" output and carry on.
//     Tests and CI exercise this path explicitly via CASC_NO_PERF=1, which
//     forces the fallback regardless of kernel support.
//
// The counters measure the calling thread (inherit=0).  Open/close are
// syscalls — construct once per measurement region, not per iteration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace casc::telemetry {

/// The counter set mirrors the paper's figures: cycles and instructions for
/// Figure 3, L1D/LLC misses for Figures 4-5, task-clock as a software
/// fallback that works even where the PMU is absent.
enum class Counter : std::uint8_t {
  kCycles,
  kInstructions,
  kL1DMisses,
  kLLCMisses,
  kTaskClockNs,
};

[[nodiscard]] const char* to_string(Counter counter) noexcept;

/// One counter's scaled reading.
struct CounterValue {
  Counter counter = Counter::kCycles;
  bool valid = false;        ///< the counter opened and was scheduled
  std::uint64_t value = 0;   ///< scaled count (raw * enabled / running)
  double scaling = 1.0;      ///< running / enabled (1.0 = never multiplexed)
};

/// A consistent group reading.
struct CounterSample {
  std::vector<CounterValue> values;

  /// Lookup; returns an invalid CounterValue when absent.
  [[nodiscard]] CounterValue get(Counter counter) const noexcept;
};

class PerfCounters {
 public:
  /// The default set: every Counter enumerator.
  [[nodiscard]] static std::vector<Counter> default_counters();

  /// False when the platform can never deliver counters (non-Linux) or when
  /// CASC_NO_PERF is set in the environment.  True is necessary but not
  /// sufficient for available(): the kernel may still refuse at open time.
  [[nodiscard]] static bool platform_supported() noexcept;

  /// Opens `counters` for the calling thread.  Never throws on kernel
  /// refusal — check available() / unavailable_reason().
  explicit PerfCounters(std::vector<Counter> counters = default_counters());
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True iff at least one counter opened.
  [[nodiscard]] bool available() const noexcept { return !fds_.empty(); }

  /// Why available() is false (empty string while available).
  [[nodiscard]] const std::string& unavailable_reason() const noexcept {
    return unavailable_reason_;
  }

  /// Zeroes and enables the group.  No-op when unavailable.
  void start() noexcept;

  /// Disables the group (values freeze).  No-op when unavailable.
  void stop() noexcept;

  /// Reads the group (scaled for multiplexing).  Counters that failed to
  /// open come back with valid == false; when available() is false every
  /// value is invalid.  Callable whether running or stopped.
  [[nodiscard]] CounterSample read() const;

 private:
  std::vector<Counter> requested_;
  std::vector<Counter> opened_;  ///< parallel to fds_
  std::vector<int> fds_;         ///< fds_[0] is the group leader
  std::string unavailable_reason_;
};

}  // namespace casc::telemetry
