// Adapter: simulated cascade timelines -> Chrome trace events.
//
// Header-only on purpose: casc_telemetry must stay a leaf library (it
// depends only on casc_common), while cascade::TimelineSpan lives in
// casc_cascade.  Only translation units that already link both (cascsim,
// tests) include this header.
//
// Simulated timestamps are cycles; the trace-event format wants
// microseconds.  We export 1 cycle = 1 us — the absolute scale is
// meaningless for a simulation, and this mapping keeps Perfetto's zoom and
// duration labels readable ("1.2ms" = 1200 cycles).
#pragma once

#include <string>

#include "casc/cascade/options.hpp"
#include "casc/telemetry/trace_json.hpp"

namespace casc::telemetry {

/// Appends one simulated cascade run's timeline under process `pid`.  Each
/// simulated processor becomes a thread track; helper/exec/transfer/stall
/// spans become slices categorized by kind (so Perfetto can filter on, e.g.,
/// cat:exec when checking that execution phases never overlap).
inline void append_sim_timeline(TraceWriter& writer,
                                const std::vector<cascade::TimelineSpan>& timeline,
                                unsigned num_processors, std::uint32_t pid,
                                const std::string& process_name) {
  writer.set_process_name(pid, process_name);
  for (unsigned p = 0; p < num_processors; ++p) {
    writer.set_thread_name(pid, p, "processor " + std::to_string(p));
  }
  std::uint64_t chunk_guess = 0;  // spans carry no chunk id; label exec spans in order
  for (const cascade::TimelineSpan& span : timeline) {
    TraceSlice s;
    switch (span.kind) {
      case cascade::TimelineSpan::Kind::kHelper:
        s.name = "helper";
        s.category = "helper";
        break;
      case cascade::TimelineSpan::Kind::kExec:
        s.name = "exec chunk " + std::to_string(chunk_guess++);
        s.category = "exec";
        break;
      case cascade::TimelineSpan::Kind::kTransfer:
        s.name = "transfer";
        s.category = "transfer";
        break;
      case cascade::TimelineSpan::Kind::kStall:
        s.name = "stall";
        s.category = "stall";
        break;
    }
    s.pid = pid;
    s.tid = span.proc;
    s.ts_us = static_cast<double>(span.begin);
    s.dur_us = static_cast<double>(span.end - span.begin);
    writer.add_slice(std::move(s));
  }
}

}  // namespace casc::telemetry
