// Per-worker event timelines for a cascade run.
//
// An EventLog owns one EventRing per worker (each a separate allocation, so
// worker i's appends never false-share with worker j's ring header) plus a
// common steady-clock epoch, so events from different workers order on one
// nanosecond axis.  The
// runtime records through a raw pointer — a null pointer means telemetry is
// off and the instrumentation reduces to a single predictable branch.
//
// Reading (snapshot / recent / export) is safe at any time, including while
// a run is in flight: rings tolerate concurrent readers (see event_ring.hpp)
// and readers merge-sort by timestamp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "casc/telemetry/event_ring.hpp"

namespace casc::telemetry {

class EventLog {
 public:
  /// `events_per_worker` must be a power of two (>= 2).
  explicit EventLog(unsigned num_workers, std::size_t events_per_worker = 4096);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Records one event on `worker`'s ring, timestamped now.  Wait-free.
  /// `worker` indices beyond num_workers() are clamped onto the last ring
  /// (defensive: a misconfigured caller must not write out of bounds).
  void record(unsigned worker, EventKind kind, std::uint64_t chunk) noexcept;

  /// Rebases the epoch to now and is otherwise a no-op: existing events keep
  /// their old (now possibly negative-looking) offsets, so call it between
  /// runs, not during one.
  void rebase_epoch() noexcept;

  [[nodiscard]] unsigned num_workers() const noexcept {
    return static_cast<unsigned>(rings_.size());
  }
  [[nodiscard]] std::size_t events_per_worker() const noexcept;

  /// Nanoseconds since the epoch (the log's clock; exposed for callers that
  /// want to timestamp non-worker annotations consistently).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// All retained events across all workers, sorted by timestamp.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// The `n` newest events across all workers, sorted by timestamp.
  [[nodiscard]] std::vector<Event> recent(std::size_t n) const;

  /// Total events overwritten (summed over rings).
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Total events ever recorded (summed over rings).
  [[nodiscard]] std::uint64_t recorded() const noexcept;

  /// Direct ring access (tests, exporters).
  [[nodiscard]] const EventRing& ring(unsigned worker) const { return *rings_[worker]; }

 private:
  // unique_ptr elements: EventRing is neither copyable nor movable, and the
  // per-ring allocations isolate each ring's write cursor on its own lines.
  std::vector<std::unique_ptr<EventRing>> rings_;
  std::uint64_t epoch_ns_ = 0;  ///< steady-clock ns at construction/rebase
};

}  // namespace casc::telemetry
