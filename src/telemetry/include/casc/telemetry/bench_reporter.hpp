// Machine-readable benchmark output: schema-versioned BENCH_<name>.json.
//
// Every bench binary routes its results through a BenchReporter so the
// project accumulates a perf trajectory that tools (tools/bench_diff.py, the
// CI bench-smoke job) can diff instead of eyeballing ASCII tables:
//
//   {
//     "schema": "casc-bench-v1",
//     "name": "fig3_loop_cycles",
//     "params":  { ... string/number knobs: scale, machine, chunk ... },
//     "repetitions": 3,
//     "wall_ns": { "median": ..., "min": ..., "max": ...,
//                  "mean": ..., "stddev": ... },
//     "counters_available": true,
//     "counters": { "cycles": { "value": ..., "scaling": ... }, ... },
//     "metrics":  { ... deterministic headline numbers (simulated cycles,
//                   speedups, miss counts) keyed for bench_diff ... }
//   }
//
// wall_ns and counters are host-dependent; metrics from the simulator are
// bit-deterministic, which is what regression gating keys on.  Counters
// cover all repetitions (one start/stop around the measurement loop) and
// come back invalid/absent on hosts where perf_event_open is unavailable —
// the schema keeps the keys so consumers need no special cases.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "casc/telemetry/perf_counters.hpp"

namespace casc::telemetry {

class BenchReporter {
 public:
  static constexpr const char* kSchema = "casc-bench-v1";

  /// `name` lands in the filename (BENCH_<name>.json): keep it
  /// [A-Za-z0-9_-].
  explicit BenchReporter(std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // Params document how the bench was configured.  Re-setting a key
  // overwrites (a repeated payload records identical params each time).
  void set_param(const std::string& key, const std::string& value);
  void set_param(const std::string& key, std::uint64_t value);
  void set_param(const std::string& key, double value);

  /// Deterministic headline results; key on stable names (bench_diff
  /// compares these between runs).  Re-setting a key overwrites.
  void add_metric(const std::string& key, double value);
  /// Counter convenience for integral metrics (per-tenant / per-shard
  /// service counters land through this).
  void add_metric(const std::string& key, std::uint64_t value);

  /// One wall-clock repetition sample.
  void add_wall_ns(std::int64_t ns);

  /// Records a counter sample (typically PerfCounters::read() after stop()).
  void set_counters(const CounterSample& sample, bool available,
                    const std::string& unavailable_reason);

  [[nodiscard]] std::size_t repetitions() const noexcept { return wall_ns_.size(); }

  /// Emits the JSON document.
  void write(std::ostream& os) const;

  /// "BENCH_<name>.json", under $CASC_BENCH_DIR when set (else the CWD).
  [[nodiscard]] std::string output_path() const;

  /// write() to output_path().  Returns the path written, or an empty string
  /// on I/O failure (benches warn and carry on; a read-only CWD must not
  /// fail a perf run).
  std::string write_file() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;  // pre-rendered JSON
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::int64_t> wall_ns_;
  bool counters_available_ = false;
  std::string counters_unavailable_reason_ = "not collected";
  CounterSample counters_;
};

}  // namespace casc::telemetry
