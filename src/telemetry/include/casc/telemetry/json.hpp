// Minimal streaming JSON writer — no external dependencies, deterministic
// output (insertion order, fixed float formatting), correct string escaping.
// Used by the trace-event and bench exporters; deliberately write-only (the
// repo never needs to parse arbitrary JSON; tests carry their own tiny
// validating reader).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace casc::telemetry {

/// Emits one JSON document to an ostream.  Usage:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("name"); w.value("fig3");
///   w.key("reps"); w.value(std::uint64_t{5});
///   w.end_object();
///
/// Misuse (value without key inside an object, unbalanced end) fails a
/// CASC_CHECK rather than emitting malformed JSON.
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit JsonWriter(std::ostream& os, int indent = 2) : os_(os), indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null();

  /// Splices pre-rendered JSON (a scalar or a whole subdocument) as the next
  /// value.  The caller vouches for its validity.
  void raw(std::string_view json);

  /// JSON string escaping (quotes not included).
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

}  // namespace casc::telemetry
