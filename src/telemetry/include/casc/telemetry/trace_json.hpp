// Chrome/Perfetto trace-event JSON export.
//
// Writes the Trace Event Format's JSON-object form ({"traceEvents": [...]}),
// which both chrome://tracing and ui.perfetto.dev open directly.  Slices are
// complete events (ph "X") with microsecond timestamps; point-in-time marks
// (aborts, watchdog) are instant events (ph "i"); process/thread labels are
// metadata events (ph "M").
//
// Two producers feed it:
//   * the real runtime's EventLog (append_event_log(): helper/exec phases
//     per worker, nanosecond wall clock), and
//   * the simulator's CascadeResult::timeline (see timeline_export.hpp:
//     helper/exec/transfer/stall spans per simulated processor, cycle
//     timestamps exported 1 cycle = 1 us so Perfetto's zoom works).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "casc/telemetry/event_log.hpp"

namespace casc::telemetry {

/// One duration slice on one track.
struct TraceSlice {
  std::string name;
  std::string category;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  double ts_us = 0;   ///< slice start
  double dur_us = 0;  ///< slice duration
};

/// One instantaneous marker on one track.
struct TraceInstant {
  std::string name;
  std::string category;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  double ts_us = 0;
};

class TraceWriter {
 public:
  void set_process_name(std::uint32_t pid, std::string name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid, std::string name);

  void add_slice(TraceSlice slice) { slices_.push_back(std::move(slice)); }
  void add_instant(TraceInstant instant) { instants_.push_back(std::move(instant)); }

  /// Converts an EventLog's begin/end pairs into slices (helper and exec
  /// phases per worker, named by chunk) and its aborts/watchdog events into
  /// instants, all under process `pid`.  Unpaired begins (run aborted inside
  /// a phase, or the begin was overwritten in the ring) become zero-length
  /// slices at the begin timestamp so the evidence is still visible.
  void append_event_log(const EventLog& log, std::uint32_t pid = 0,
                        const std::string& process_name = "cascade runtime");

  [[nodiscard]] std::size_t num_slices() const noexcept { return slices_.size(); }

  /// Emits the full document.
  void write(std::ostream& os) const;

  /// write() to `path`; throws CheckFailure when the file cannot be opened.
  void save(const std::string& path) const;

 private:
  struct Meta {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    bool is_thread = false;
    std::string name;
  };

  std::vector<Meta> meta_;
  std::vector<TraceSlice> slices_;
  std::vector<TraceInstant> instants_;
};

}  // namespace casc::telemetry
