#include "casc/telemetry/event_log.hpp"

#include <algorithm>
#include <chrono>

namespace casc::telemetry {

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRunBegin:
      return "run_begin";
    case EventKind::kRunEnd:
      return "run_end";
    case EventKind::kHelperBegin:
      return "helper_begin";
    case EventKind::kHelperEnd:
      return "helper_end";
    case EventKind::kTokenAcquire:
      return "token_acquire";
    case EventKind::kExecBegin:
      return "exec_begin";
    case EventKind::kExecEnd:
      return "exec_end";
    case EventKind::kTokenPass:
      return "token_pass";
    case EventKind::kAbort:
      return "abort";
    case EventKind::kWatchdog:
      return "watchdog";
    case EventKind::kHelperFault:
      return "helper_fault";
    case EventKind::kReclaim:
      return "reclaim";
    case EventKind::kQuarantine:
      return "quarantine";
    case EventKind::kRetry:
      return "retry";
    case EventKind::kDemote:
      return "demote";
  }
  return "?";
}

EventLog::EventLog(unsigned num_workers, std::size_t events_per_worker) {
  CASC_CHECK(num_workers > 0, "EventLog needs at least one worker");
  rings_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    rings_.push_back(std::make_unique<EventRing>(events_per_worker));
  }
  epoch_ns_ = steady_ns();
}

void EventLog::record(unsigned worker, EventKind kind, std::uint64_t chunk) noexcept {
  // Clamp the ring index (never write out of bounds) but record the caller's
  // worker id, so a misconfigured producer is visible in the timeline.
  const unsigned w = std::min<unsigned>(worker, num_workers() - 1);
  rings_[w]->append(now_ns(), kind, static_cast<std::uint16_t>(worker), chunk);
}

void EventLog::rebase_epoch() noexcept { epoch_ns_ = steady_ns(); }

std::size_t EventLog::events_per_worker() const noexcept {
  return rings_.front()->capacity();
}

std::uint64_t EventLog::now_ns() const noexcept {
  const std::uint64_t now = steady_ns();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

std::vector<Event> EventLog::snapshot() const {
  std::vector<Event> all;
  for (const auto& ring : rings_) {
    std::vector<Event> events = ring->snapshot();
    all.insert(all.end(), events.begin(), events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) { return a.ns < b.ns; });
  return all;
}

std::vector<Event> EventLog::recent(std::size_t n) const {
  std::vector<Event> all = snapshot();
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  return all;
}

std::uint64_t EventLog::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

std::uint64_t EventLog::recorded() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->appended();
  return total;
}

}  // namespace casc::telemetry
