#include "casc/telemetry/bench_reporter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "casc/telemetry/json.hpp"

namespace casc::telemetry {

namespace {

/// Upserts into an ordered key/value vector (insertion order is the schema's
/// key order; determinism matters for golden tests and diffs).
template <typename V>
void upsert(std::vector<std::pair<std::string, V>>& kv, const std::string& key,
            V value) {
  for (auto& [k, v] : kv) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  kv.emplace_back(key, std::move(value));
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : (xs[mid - 1] + xs[mid]) / 2.0;
}

}  // namespace

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {}

void BenchReporter::set_param(const std::string& key, const std::string& value) {
  upsert(params_, key, std::string("\"" + JsonWriter::escape(value) + "\""));
}

void BenchReporter::set_param(const std::string& key, std::uint64_t value) {
  upsert(params_, key, std::to_string(value));
}

void BenchReporter::set_param(const std::string& key, double value) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.value(value);
  upsert(params_, key, os.str());
}

void BenchReporter::add_metric(const std::string& key, double value) {
  upsert(metrics_, key, value);
}

void BenchReporter::add_metric(const std::string& key, std::uint64_t value) {
  upsert(metrics_, key, static_cast<double>(value));
}

void BenchReporter::add_wall_ns(std::int64_t ns) { wall_ns_.push_back(ns); }

void BenchReporter::set_counters(const CounterSample& sample, bool available,
                                 const std::string& unavailable_reason) {
  counters_ = sample;
  counters_available_ = available;
  counters_unavailable_reason_ = available ? "" : unavailable_reason;
}

void BenchReporter::write(std::ostream& os) const {
  JsonWriter w(os, 2);
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("name");
  w.value(name_);

  w.key("params");
  w.begin_object();
  for (const auto& [k, rendered] : params_) {
    w.key(k);
    // Params are pre-rendered JSON scalars (string/number); splice verbatim.
    w.raw(rendered);
  }
  w.end_object();

  w.key("repetitions");
  w.value(static_cast<std::uint64_t>(wall_ns_.size()));

  std::vector<double> xs(wall_ns_.begin(), wall_ns_.end());
  double mean = 0, m2 = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {  // Welford
    const double d = xs[i] - mean;
    mean += d / static_cast<double>(i + 1);
    m2 += d * (xs[i] - mean);
  }
  const double stddev =
      xs.size() > 1 ? std::sqrt(m2 / static_cast<double>(xs.size() - 1)) : 0.0;
  w.key("wall_ns");
  w.begin_object();
  w.key("median");
  w.value(median_of(xs));
  w.key("min");
  w.value(xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end()));
  w.key("max");
  w.value(xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end()));
  w.key("mean");
  w.value(mean);
  w.key("stddev");
  w.value(stddev);
  w.end_object();

  w.key("counters_available");
  w.value(counters_available_);
  if (!counters_available_) {
    w.key("counters_unavailable_reason");
    w.value(counters_unavailable_reason_);
  }
  w.key("counters");
  w.begin_object();
  for (const CounterValue& v : counters_.values) {
    if (!v.valid) continue;
    w.key(to_string(v.counter));
    w.begin_object();
    w.key("value");
    w.value(v.value);
    w.key("scaling");
    w.value(v.scaling);
    w.end_object();
  }
  w.end_object();

  w.key("metrics");
  w.begin_object();
  for (const auto& [k, v] : metrics_) {
    w.key(k);
    w.value(v);
  }
  w.end_object();

  w.end_object();
  os << "\n";
}

std::string BenchReporter::output_path() const {
  std::string dir;
  if (const char* env = std::getenv("CASC_BENCH_DIR")) {
    if (env[0] != '\0') dir = std::string(env) + "/";
  }
  return dir + "BENCH_" + name_ + ".json";
}

std::string BenchReporter::write_file() const {
  const std::string path = output_path();
  std::ofstream out(path);
  if (!out.good()) return "";
  write(out);
  return out.good() ? path : "";
}

}  // namespace casc::telemetry
