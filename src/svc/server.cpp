#include "casc/svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "casc/common/check.hpp"
#include "casc/common/diagnostic.hpp"
#include "casc/exec/bridge.hpp"
#include "casc/exec/loop_pool.hpp"
#include "casc/loopir/pipeline_spec.hpp"
#include "casc/rt/executor.hpp"
#include "casc/rt/fault_injection.hpp"

namespace casc::svc {

namespace {

exec::HelperMode to_exec(HelperMode mode) noexcept {
  switch (mode) {
    case HelperMode::kNone: return exec::HelperMode::kNone;
    case HelperMode::kPrefetch: return exec::HelperMode::kPrefetch;
    case HelperMode::kRestructure: return exec::HelperMode::kRestructure;
  }
  return exec::HelperMode::kRestructure;
}

}  // namespace

// One accepted connection.  The fd is owned by this struct and closed when
// the last shared_ptr drops — job reply hooks hold references, so a client
// that disconnects with jobs in flight keeps the fd alive (writes to it just
// fail and are counted) instead of racing a close.
struct SvcServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Serialized frame write (shard threads and the handler interleave).
  IoStatus send(FrameType type, const std::string& payload) {
    std::lock_guard<std::mutex> lock(write_mutex);
    return write_frame(fd, type, payload);
  }

  /// Unblocks the handler's blocking read without invalidating the fd.
  void shutdown_rw() { ::shutdown(fd, SHUT_RDWR); }

  int fd = -1;
  std::mutex write_mutex;
};

SvcServer::SvcServer(SvcConfig config) : config_(std::move(config)),
                                         scheduler_(config_.queue_cap) {
  CASC_CHECK(!config_.socket_path.empty(), "SvcServer: socket_path is empty");
  CASC_CHECK(config_.num_shards >= 1, "SvcServer: num_shards must be >= 1");
  CASC_CHECK(config_.threads_per_shard >= 1,
             "SvcServer: threads_per_shard must be >= 1");
  CASC_CHECK(config_.batch_max >= 1, "SvcServer: batch_max must be >= 1");
  CASC_CHECK(config_.socket_path.size() < sizeof(sockaddr_un{}.sun_path),
             "SvcServer: socket_path too long for AF_UNIX (" +
                 std::to_string(config_.socket_path.size()) + " bytes)");
}

SvcServer::~SvcServer() { stop(); }

void SvcServer::start() {
  CASC_CHECK(!started_.exchange(true), "SvcServer::start() called twice");

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CASC_CHECK(listen_fd_ >= 0,
             std::string("SvcServer: socket() failed: ") + std::strerror(errno));
  ::unlink(config_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    CASC_CHECK(false, "SvcServer: bind(" + config_.socket_path +
                          ") failed: " + std::strerror(err));
  }
  CASC_CHECK(::listen(listen_fd_, 128) == 0,
             std::string("SvcServer: listen() failed: ") + std::strerror(errno));

  live_shards_.store(config_.num_shards);
  shard_state_.clear();
  for (unsigned s = 0; s < config_.num_shards; ++s) {
    shard_state_.push_back(std::make_unique<ShardState>());
  }
  shards_.reserve(config_.num_shards);
  for (unsigned s = 0; s < config_.num_shards; ++s) {
    shards_.emplace_back([this, s] { shard_main(s); });
  }
  listener_ = std::thread([this] { listener_main(); });
}

void SvcServer::request_stop() {
  if (stopping_.exchange(true)) return;
  // Unblock accept() first so no new connections slip in, then flush the
  // queue (on_error hooks still write live sockets), then unblock every
  // handler's blocking read.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  scheduler_.shutdown();
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (const auto& conn : connections_) conn->shutdown_rw();
}

void SvcServer::join_all() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (joined_.exchange(true)) return;
  if (listener_.joinable()) listener_.join();
  for (std::thread& t : shards_) {
    if (t.joinable()) t.join();
  }
  // The listener has exited, so handlers_ can no longer grow.
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> conn_lock(conn_mutex_);
    connections_.clear();
  }
}

void SvcServer::wait() {
  if (!started_.load()) return;
  join_all();
}

void SvcServer::stop() {
  if (!started_.load()) return;
  request_stop();
  join_all();
}

void SvcServer::listener_main() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (or broken): stop accepting
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.push_back(conn);
    handlers_.emplace_back(
        [this, conn = std::move(conn)]() mutable { handle_connection(std::move(conn)); });
  }
}

void SvcServer::handle_connection(std::shared_ptr<Connection> conn) {
  Frame frame;
  bool open = true;
  while (open && !stopping_.load()) {
    const IoStatus status = read_frame(conn->fd, frame);
    switch (status) {
      case IoStatus::kOk:
        break;
      case IoStatus::kTooBig:
        ++frames_rejected_;
        (void)conn->send(FrameType::kError,
                         encode_error({0, "svc-frame-too-big",
                                       "frame payload exceeds " +
                                           std::to_string(kMaxFramePayload) +
                                           " bytes"}));
        open = false;
        continue;
      case IoStatus::kBadType:
        ++frames_rejected_;
        (void)conn->send(FrameType::kError,
                         encode_error({0, "svc-bad-frame",
                                       "unknown frame type byte"}));
        open = false;
        continue;
      case IoStatus::kTorn:
        ++frames_rejected_;
        open = false;
        continue;
      case IoStatus::kEof:
      case IoStatus::kError:
        open = false;
        continue;
    }

    switch (frame.type) {
      case FrameType::kSubmit:
        handle_submit(conn, frame.payload);
        break;
      case FrameType::kStat:
        (void)conn->send(FrameType::kStatReply, encode_stats(stats()));
        break;
      case FrameType::kDrain: {
        // Graceful drain: close admission, let the shards run the queues
        // dry, ack with the grand completion total, then stop the server.
        scheduler_.drain();
        scheduler_.wait_idle();
        std::uint64_t completed = 0;
        for (const auto& [name, ts] : scheduler_.tenant_stats()) {
          completed += ts.completed;
        }
        (void)conn->send(FrameType::kDrainAck,
                         "completed " + std::to_string(completed) + "\n");
        request_stop();
        open = false;
        break;
      }
      default:
        // Server-to-client frame types arriving at the server.
        ++frames_rejected_;
        (void)conn->send(
            FrameType::kError,
            encode_error({0, "svc-bad-frame",
                          "frame type not valid in the client->server "
                          "direction"}));
        open = false;
        break;
    }
  }
  // Let the peer observe EOF now; the fd itself is closed when the last
  // reply hook drops its reference.
  conn->shutdown_rw();
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if (it->get() == conn.get()) {
      connections_.erase(it);
      break;
    }
  }
}

void SvcServer::handle_submit(const std::shared_ptr<Connection>& conn,
                              const std::string& payload) {
  const auto reply_error = [&](std::uint64_t job, const std::string& rule,
                               const std::string& message) {
    ++frames_rejected_;
    if (conn->send(FrameType::kError, encode_error({job, rule, message})) !=
        IoStatus::kOk) {
      ++reply_failures_;
    }
  };

  SubmitRequest req;
  common::DiagnosticList diags;
  if (!parse_submit(payload, req, diags)) {
    const common::Diagnostic* first = diags.first_error();
    reply_error(req.job, first ? first->rule : "svc-bad-header",
                first ? first->message : "unusable job header");
    return;
  }

  // Pipeline chains are a batch-side feature (cascsim / bench run them whole
  // against the plan-placed arena); the service schedules single-loop jobs.
  // Detect the directive BEFORE LoopSpec::parse so the client hears which
  // FEATURE is unsupported, not a bogus "unknown directive" syntax error.
  if (loopir::is_pipeline_text(req.spec_text)) {
    reply_error(req.job, "svc-spec-unsupported",
                "spec is a pipeline chain (directive 'pipeline'); cascading "
                "it requires chain scheduling (one executor spanning the "
                "stages plus a plan-placed staging arena), which this "
                "service does not run yet — submit the stages as "
                "independent loop jobs instead");
    return;
  }

  common::DiagnosticList spec_diags;
  loopir::LoopSpec spec = loopir::LoopSpec::parse(req.spec_text, spec_diags);
  if (!spec_diags.ok()) {
    reply_error(req.job, "svc-spec-invalid",
                common::render_text(*spec_diags.first_error()));
    return;
  }
  if (spec.trip > config_.max_job_trip) {
    reply_error(req.job, "svc-job-too-large",
                "trip " + std::to_string(spec.trip) + " exceeds the admission cap " +
                    std::to_string(config_.max_job_trip));
    return;
  }
  try {
    (void)spec.instantiate();  // semantic gate; cheap relative to materialize
  } catch (const std::exception& e) {
    reply_error(req.job, "svc-spec-invalid", e.what());
    return;
  }
  // Reduction specs are analyzable (the classifier names the operand and
  // merge operator) but not yet runnable: the service has no privatization
  // runtime to stage per-worker partial accumulators.  Refuse precisely so
  // the client knows what the spec needs rather than why it is "invalid".
  if (const auto red = exec::find_reduction_operand(spec)) {
    reply_error(req.job, "svc-spec-unsupported",
                "operand '" + red->name + "' is a commutative '" +
                    red->reduce_op + "' reduction (class " + red->klass +
                    "); cascading it requires privatization (per-worker "
                    "partial accumulators merged on token hand-off), which "
                    "this service does not run yet");
    return;
  }

  JobTicket ticket;
  ticket.request = std::move(req);
  ticket.spec = std::move(spec);
  ticket.on_result = [this, conn](const ResultReply& r) {
    if (conn->send(FrameType::kResult, encode_result(r)) != IoStatus::kOk) {
      ++reply_failures_;
    }
  };
  ticket.on_error = [this, conn](const ErrorReply& e) {
    if (conn->send(FrameType::kError, encode_error(e)) != IoStatus::kOk) {
      ++reply_failures_;
    }
  };

  const std::uint64_t job_id = ticket.request.job;
  const Admit admit = scheduler_.submit(std::move(ticket));
  if (admit != Admit::kAccepted) {
    const char* message = admit == Admit::kQueueFull
                              ? "admission queue is at capacity; retry later"
                          : admit == Admit::kDraining
                              ? "server is draining; no new jobs"
                              : "job id was already submitted by this tenant";
    reply_error(job_id, to_string(admit), message);
  }
}

void SvcServer::shard_main(unsigned shard_id) {
  ShardState& state = *shard_state_[shard_id];

  rt::ExecutorConfig exec_cfg;
  exec_cfg.num_threads = config_.threads_per_shard;
  exec_cfg.name = "shard-" + std::to_string(shard_id);
  if (config_.pin_shards) {
    const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned k = 0; k < config_.threads_per_shard; ++k) {
      exec_cfg.cpus.push_back(
          (shard_id * config_.threads_per_shard + k) % ncpu);
    }
  }
  // The executor is constructed on the shard thread so worker 0's affinity
  // lands on this thread, i.e. the shard thread IS ring position 0.
  rt::CascadeExecutor executor(exec_cfg);
  exec::LoopPool pool;

  std::vector<JobTicket> batch;
  while (!stopping_.load()) {
    if (!scheduler_.pop_batch(config_.batch_max, batch)) break;
    const std::uint64_t batch_id = batch_counter_.fetch_add(1) + 1;
    ++state.batches;
    for (JobTicket& job : batch) {
      (void)execute_job(shard_id, pool, executor, job, batch_id);
    }
    batch.clear();
    const exec::LoopPoolStats pstats = pool.stats();
    state.pool_hits.store(pstats.hits);
    state.pool_misses.store(pstats.misses);
    // Quarantine: a shard that keeps failing jobs stops pulling work and
    // leaves the remaining shards to absorb the load.  The last live shard
    // soldiers on regardless — like worker 0 of a cascade, somebody must
    // keep executing.
    if (state.faults.load() >= config_.max_shard_faults &&
        !state.quarantined.load()) {
      unsigned live = live_shards_.load();
      while (live > 1 &&
             !live_shards_.compare_exchange_weak(live, live - 1)) {
      }
      if (live > 1) {
        state.quarantined.store(true);
        break;
      }
    }
  }
}

bool SvcServer::execute_job(unsigned shard_id, exec::LoopPool& pool,
                            rt::CascadeExecutor& executor, JobTicket& job,
                            std::uint64_t batch_id) {
  ShardState& state = *shard_state_[shard_id];
  try {
    if (config_.before_execute) config_.before_execute(shard_id, job);

    exec::LoopLease lease = pool.acquire(job.spec, job.request.spec_text);

    exec::RtOptions opt;
    opt.helper = to_exec(job.request.helper);
    opt.chunk_bytes = job.request.chunk_bytes != 0 ? job.request.chunk_bytes
                                                   : config_.default_chunk_bytes;
    rt::ChaosPlan chaos_plan;
    if (job.request.chaos_seed.has_value()) {
      const std::uint64_t ipc =
          exec::plan_for(lease.loop(), opt.chunk_bytes).iters_per_chunk();
      const std::uint64_t total = lease.loop().num_iterations();
      const std::uint64_t num_chunks =
          total == 0 ? 0 : (total + ipc - 1) / ipc;
      chaos_plan = rt::ChaosPlan::make(*job.request.chaos_seed, num_chunks, ipc);
      opt.chaos = &chaos_plan;
      ++state.chaos_jobs;
    }

    const exec::ExecResult result = exec::run_cascaded(lease.loop(), executor, opt);

    ResultReply reply;
    reply.job = job.request.job;
    reply.tenant = job.request.tenant;
    reply.shard = shard_id;
    reply.digest = result.digest;
    reply.rw_checksum = result.rw_checksum;
    reply.seconds = result.seconds;
    reply.reused = lease.reused();
    reply.degraded = result.degraded;
    reply.helper_faults = result.helper_faults;
    reply.chunks_reclaimed = result.chunks_reclaimed;
    reply.demotion = result.demotion_level;
    reply.batch = batch_id;
    ++state.jobs;
    if (result.degraded) ++state.degraded;
    // Completion is recorded before the reply leaves the process: a client
    // that has read reply N and then asks for stats must see N completions.
    scheduler_.note_done(job.request.tenant, 1);
    if (job.on_result) job.on_result(reply);
    return true;
  } catch (const std::exception& e) {
    ++state.faults;
    scheduler_.note_done(job.request.tenant, 1);
    if (job.on_error) {
      job.on_error({job.request.job, "svc-job-failed", e.what()});
    }
    return false;
  }
}

std::vector<std::pair<std::string, std::uint64_t>> SvcServer::stats() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.emplace_back("svc.shards", config_.num_shards);
  out.emplace_back("svc.live_shards", live_shards_.load());
  out.emplace_back("svc.queued", scheduler_.queued());
  out.emplace_back("svc.in_flight", scheduler_.in_flight());
  out.emplace_back("svc.draining", scheduler_.draining() ? 1 : 0);
  out.emplace_back("svc.batches", batch_counter_.load());
  out.emplace_back("svc.frames_rejected", frames_rejected_.load());
  out.emplace_back("svc.reply_failures", reply_failures_.load());
  for (const auto& [name, ts] : scheduler_.tenant_stats()) {
    out.emplace_back("tenant." + name + ".weight", ts.weight);
    out.emplace_back("tenant." + name + ".submitted", ts.submitted);
    out.emplace_back("tenant." + name + ".completed", ts.completed);
    out.emplace_back("tenant." + name + ".rejected", ts.rejected);
  }
  for (unsigned s = 0; s < shard_state_.size(); ++s) {
    const ShardState& st = *shard_state_[s];
    const std::string prefix = "shard." + std::to_string(s) + ".";
    out.emplace_back(prefix + "jobs", st.jobs.load());
    out.emplace_back(prefix + "batches", st.batches.load());
    out.emplace_back(prefix + "pool_hits", st.pool_hits.load());
    out.emplace_back(prefix + "pool_misses", st.pool_misses.load());
    out.emplace_back(prefix + "degraded", st.degraded.load());
    out.emplace_back(prefix + "chaos_jobs", st.chaos_jobs.load());
    out.emplace_back(prefix + "faults", st.faults.load());
    out.emplace_back(prefix + "quarantined", st.quarantined.load() ? 1 : 0);
  }
  return out;
}

}  // namespace casc::svc
