#include "casc/svc/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

namespace casc::svc {

namespace {

/// Reads exactly `len` bytes.  Returns kOk, kEof (0 bytes read), kTorn
/// (short read), or kError.
IoStatus read_exact(int fd, char* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n == 0) return got == 0 ? IoStatus::kEof : IoStatus::kTorn;
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    got += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (~0ull - static_cast<std::uint64_t>(c - '0')) / 10) return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

/// Splits "key rest-of-line"; returns false on a line with no space.
bool split_kv(const std::string& line, std::string& key, std::string& value) {
  const auto space = line.find(' ');
  if (space == std::string::npos || space == 0) return false;
  key = line.substr(0, space);
  value = line.substr(space + 1);
  return true;
}

bool valid_tenant_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const char* to_string(IoStatus status) noexcept {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kEof: return "eof";
    case IoStatus::kTorn: return "torn frame";
    case IoStatus::kTooBig: return "frame too big";
    case IoStatus::kBadType: return "bad frame type";
    case IoStatus::kError: return "io error";
  }
  return "?";
}

const char* to_string(HelperMode mode) noexcept {
  switch (mode) {
    case HelperMode::kNone: return "none";
    case HelperMode::kPrefetch: return "prefetch";
    case HelperMode::kRestructure: return "restructure";
  }
  return "?";
}

IoStatus read_frame(int fd, Frame& frame) {
  unsigned char header[5];
  IoStatus status = read_exact(fd, reinterpret_cast<char*>(header), sizeof(header));
  if (status != IoStatus::kOk) return status;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  const std::uint8_t type = header[4];
  if (len > kMaxFramePayload) return IoStatus::kTooBig;
  if (type < static_cast<std::uint8_t>(FrameType::kSubmit) ||
      type > static_cast<std::uint8_t>(FrameType::kDrainAck)) {
    return IoStatus::kBadType;
  }
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(len);
  if (len != 0) {
    status = read_exact(fd, frame.payload.data(), len);
    if (status == IoStatus::kEof) return IoStatus::kTorn;  // header already read
    if (status != IoStatus::kOk) return status;
  }
  return IoStatus::kOk;
}

IoStatus write_frame(int fd, FrameType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) return IoStatus::kTooBig;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string wire;
  wire.reserve(5 + payload.size());
  wire.push_back(static_cast<char>(len & 0xff));
  wire.push_back(static_cast<char>((len >> 8) & 0xff));
  wire.push_back(static_cast<char>((len >> 16) & 0xff));
  wire.push_back(static_cast<char>((len >> 24) & 0xff));
  wire.push_back(static_cast<char>(type));
  wire += payload;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    sent += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

std::string encode_submit(const SubmitRequest& req) {
  std::ostringstream os;
  os << "tenant " << req.tenant << "\n";
  os << "job " << req.job << "\n";
  if (req.weight != 1) os << "weight " << req.weight << "\n";
  if (req.helper != HelperMode::kRestructure) {
    os << "helper " << to_string(req.helper) << "\n";
  }
  if (req.chunk_bytes != 0) os << "chunk " << req.chunk_bytes << "\n";
  if (req.chaos_seed) os << "chaos " << *req.chaos_seed << "\n";
  os << "\n" << req.spec_text;
  return os.str();
}

bool parse_submit(const std::string& payload, SubmitRequest& req,
                  common::DiagnosticList& diags) {
  req = SubmitRequest{};
  bool saw_tenant = false;
  bool saw_job = false;
  std::size_t pos = 0;
  int line_no = 0;
  bool header_done = false;
  while (pos <= payload.size()) {
    const auto nl = payload.find('\n', pos);
    if (nl == std::string::npos) {
      // Header never ended: there is no blank separator line.
      break;
    }
    const std::string line = payload.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) {
      header_done = true;
      break;
    }
    std::string key;
    std::string value;
    if (!split_kv(line, key, value)) {
      diags.error("svc-bad-header",
                  "malformed header line '" + line + "' (expected 'key value')",
                  "", line_no);
      return false;
    }
    if (key == "tenant") {
      if (!valid_tenant_name(value)) {
        diags.error("svc-bad-field",
                    "invalid tenant name '" + value +
                        "' (want [A-Za-z0-9_-]{1,64})",
                    "tenant", line_no);
        return false;
      }
      req.tenant = value;
      saw_tenant = true;
    } else if (key == "job") {
      if (!parse_u64(value, req.job)) {
        diags.error("svc-bad-field", "job id '" + value + "' is not a u64",
                    "job", line_no);
        return false;
      }
      saw_job = true;
    } else if (key == "weight") {
      std::uint64_t w = 0;
      if (!parse_u64(value, w) || w == 0 || w > 1000) {
        diags.error("svc-bad-field",
                    "weight '" + value + "' out of range (want 1..1000)",
                    "weight", line_no);
        return false;
      }
      req.weight = static_cast<std::uint32_t>(w);
    } else if (key == "helper") {
      if (value == "none") {
        req.helper = HelperMode::kNone;
      } else if (value == "prefetch") {
        req.helper = HelperMode::kPrefetch;
      } else if (value == "restructure") {
        req.helper = HelperMode::kRestructure;
      } else {
        diags.error("svc-bad-field",
                    "unknown helper '" + value +
                        "' (expected none, prefetch, or restructure)",
                    "helper", line_no);
        return false;
      }
    } else if (key == "chunk") {
      if (!parse_u64(value, req.chunk_bytes)) {
        diags.error("svc-bad-field", "chunk '" + value + "' is not a u64",
                    "chunk", line_no);
        return false;
      }
    } else if (key == "chaos") {
      std::uint64_t seed = 0;
      if (!parse_u64(value, seed)) {
        diags.error("svc-bad-field", "chaos seed '" + value + "' is not a u64",
                    "chaos", line_no);
        return false;
      }
      req.chaos_seed = seed;
    } else {
      diags.error("svc-bad-header", "unknown header key '" + key + "'", key,
                  line_no);
      return false;
    }
  }
  if (!header_done) {
    diags.error("svc-bad-header",
                "submit payload has no blank line terminating the job header");
    return false;
  }
  if (!saw_tenant) {
    diags.error("svc-missing-tenant", "job header does not name a tenant");
  }
  if (!saw_job) {
    diags.error("svc-missing-job", "job header does not carry a job id");
  }
  req.spec_text = payload.substr(pos);
  if (diags.ok() && req.spec_text.find_first_not_of(" \t\r\n") ==
                        std::string::npos) {
    diags.error("svc-empty-spec", "submit carries no LoopSpec text");
  }
  return diags.ok();
}

std::string encode_result(const ResultReply& reply) {
  std::ostringstream os;
  os << "job " << reply.job << "\n"
     << "tenant " << reply.tenant << "\n"
     << "shard " << reply.shard << "\n"
     << "digest " << reply.digest << "\n"
     << "rw_checksum " << reply.rw_checksum << "\n"
     << "seconds " << reply.seconds << "\n"
     << "reused " << (reply.reused ? 1 : 0) << "\n"
     << "degraded " << (reply.degraded ? 1 : 0) << "\n"
     << "helper_faults " << reply.helper_faults << "\n"
     << "chunks_reclaimed " << reply.chunks_reclaimed << "\n"
     << "demotion " << reply.demotion << "\n"
     << "batch " << reply.batch << "\n";
  return os.str();
}

bool parse_result(const std::string& payload, ResultReply& reply) {
  reply = ResultReply{};
  std::istringstream is(payload);
  std::string line;
  bool saw_job = false;
  bool saw_digest = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string key;
    std::string value;
    if (!split_kv(line, key, value)) return false;
    std::uint64_t u = 0;
    if (key == "tenant") {
      reply.tenant = value;
      continue;
    }
    if (key == "seconds") {
      try {
        reply.seconds = std::stod(value);
      } catch (const std::exception&) {
        return false;
      }
      continue;
    }
    if (!parse_u64(value, u)) return false;
    if (key == "job") {
      reply.job = u;
      saw_job = true;
    } else if (key == "shard") {
      reply.shard = static_cast<unsigned>(u);
    } else if (key == "digest") {
      reply.digest = u;
      saw_digest = true;
    } else if (key == "rw_checksum") {
      reply.rw_checksum = u;
    } else if (key == "reused") {
      reply.reused = u != 0;
    } else if (key == "degraded") {
      reply.degraded = u != 0;
    } else if (key == "helper_faults") {
      reply.helper_faults = u;
    } else if (key == "chunks_reclaimed") {
      reply.chunks_reclaimed = u;
    } else if (key == "demotion") {
      reply.demotion = static_cast<unsigned>(u);
    } else if (key == "batch") {
      reply.batch = u;
    }  // unknown keys are forward-compatible: ignored
  }
  return saw_job && saw_digest;
}

std::string encode_error(const ErrorReply& reply) {
  std::ostringstream os;
  os << "job " << reply.job << "\n"
     << "rule " << reply.rule << "\n"
     << "message " << reply.message << "\n";
  return os.str();
}

bool parse_error(const std::string& payload, ErrorReply& reply) {
  reply = ErrorReply{};
  std::istringstream is(payload);
  std::string line;
  bool saw_rule = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string key;
    std::string value;
    if (!split_kv(line, key, value)) return false;
    if (key == "job") {
      if (!parse_u64(value, reply.job)) return false;
    } else if (key == "rule") {
      reply.rule = value;
      saw_rule = true;
    } else if (key == "message") {
      reply.message = value;
    }
  }
  return saw_rule;
}

std::string encode_stats(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  std::ostringstream os;
  for (const auto& [key, value] : counters) os << key << " " << value << "\n";
  return os.str();
}

bool parse_stats(const std::string& payload,
                 std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  counters.clear();
  std::istringstream is(payload);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string key;
    std::string value;
    std::uint64_t u = 0;
    if (!split_kv(line, key, value) || !parse_u64(value, u)) return false;
    counters.emplace_back(key, u);
  }
  return true;
}

}  // namespace casc::svc
