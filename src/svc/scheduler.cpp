#include "casc/svc/scheduler.hpp"

#include <algorithm>

#include "casc/common/check.hpp"

namespace casc::svc {

const char* to_string(Admit admit) noexcept {
  switch (admit) {
    case Admit::kAccepted: return "accepted";
    case Admit::kQueueFull: return "svc-queue-full";
    case Admit::kDraining: return "svc-draining";
    case Admit::kDuplicateJob: return "svc-duplicate-job";
  }
  return "?";
}

TenantScheduler::TenantScheduler(std::size_t queue_cap) : queue_cap_(queue_cap) {
  CASC_CHECK(queue_cap >= 1, "TenantScheduler: queue_cap must be >= 1");
}

Admit TenantScheduler::submit(JobTicket&& job) {
  std::lock_guard<std::mutex> lock(mutex_);
  Tenant& tenant = tenants_[job.request.tenant];
  tenant.weight = job.request.weight;
  tenant.stats.weight = job.request.weight;
  if (draining_ || shutdown_) {
    ++tenant.stats.rejected;
    return Admit::kDraining;
  }
  if (tenant.seen_jobs.count(job.request.job) != 0) {
    ++tenant.stats.rejected;
    return Admit::kDuplicateJob;
  }
  if (queued_ >= queue_cap_) {
    ++tenant.stats.rejected;
    return Admit::kQueueFull;
  }
  tenant.seen_jobs.insert(job.request.job);
  const std::string name = job.request.tenant;
  tenant.queue.push_back(std::move(job));
  ++queued_;
  ++tenant.stats.submitted;
  if (!tenant.in_ring) {
    tenant.in_ring = true;
    tenant.credit = 0;
    ring_.push_back(name);
  }
  work_cv_.notify_one();
  return Admit::kAccepted;
}

bool TenantScheduler::pop_batch(std::size_t max_jobs,
                                std::vector<JobTicket>& out) {
  out.clear();
  CASC_CHECK(max_jobs >= 1, "pop_batch: max_jobs must be >= 1");
  std::unique_lock<std::mutex> lock(mutex_);
  work_cv_.wait(lock, [&] {
    return shutdown_ || queued_ != 0 || (draining_ && queued_ == 0);
  });
  if (shutdown_ || queued_ == 0) return false;  // drained or shut down

  // WRR: the tenant at the ring front spends its cycle credit; when the
  // credit (or its queue) is exhausted it rotates to the back, so every
  // active tenant is visited once per cycle.
  const std::string name = ring_.front();
  Tenant& tenant = tenants_[name];
  if (tenant.credit == 0) tenant.credit = tenant.weight;
  const std::size_t take =
      std::min({max_jobs, static_cast<std::size_t>(tenant.credit),
                tenant.queue.size()});
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(tenant.queue.front()));
    tenant.queue.pop_front();
  }
  queued_ -= take;
  in_flight_ += take;
  tenant.credit -= static_cast<std::uint32_t>(take);
  if (tenant.queue.empty()) {
    tenant.in_ring = false;
    tenant.credit = 0;
    ring_.pop_front();
  } else if (tenant.credit == 0) {
    ring_.pop_front();
    ring_.push_back(name);
  }
  // More work may remain for a concurrent popper.
  if (queued_ != 0) work_cv_.notify_one();
  return true;
}

void TenantScheduler::note_done(const std::string& tenant, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) it->second.stats.completed += n;
  CASC_CHECK(in_flight_ >= n, "note_done: more completions than pops");
  in_flight_ -= n;
  if (queued_ == 0 && in_flight_ == 0) idle_cv_.notify_all();
}

void TenantScheduler::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
  work_cv_.notify_all();
  if (queued_ == 0 && in_flight_ == 0) idle_cv_.notify_all();
}

void TenantScheduler::shutdown() {
  std::vector<JobTicket> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    draining_ = true;
    for (auto& [name, tenant] : tenants_) {
      while (!tenant.queue.empty()) {
        orphans.push_back(std::move(tenant.queue.front()));
        tenant.queue.pop_front();
        ++tenant.stats.rejected;
      }
      tenant.in_ring = false;
    }
    ring_.clear();
    queued_ = 0;
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
  // Reply outside the lock: the hooks write sockets.
  for (JobTicket& job : orphans) {
    if (job.on_error) {
      job.on_error({job.request.job, "svc-draining",
                    "server shut down before the job was dispatched"});
    }
  }
}

void TenantScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queued_ == 0 && in_flight_ == 0; });
}

bool TenantScheduler::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::size_t TenantScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::size_t TenantScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::vector<std::pair<std::string, TenantScheduler::TenantStats>>
TenantScheduler::tenant_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, TenantStats>> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.emplace_back(name, tenant.stats);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace casc::svc
