// casc::svc wire protocol: length-prefixed frames over a Unix-domain stream
// socket.
//
// Frame layout (little-endian):
//
//   [u32 payload_len] [u8 type] [payload_len bytes of payload]
//
// Payloads are line-oriented "key value" text — debuggable with socat, and
// parsed with the same Diagnostic machinery as .casc specs, so every
// malformed input gets a structured error reply instead of a server abort.
//
// Frame types and payloads:
//
//   kSubmit      client->server  job header lines, blank line, LoopSpec text:
//                                  tenant <name>        (required)
//                                  job <u64>            (required; unique per
//                                                        tenant for the
//                                                        server's lifetime)
//                                  weight <u32>         (optional, 1..1000)
//                                  helper none|prefetch|restructure (optional)
//                                  chunk <bytes>        (optional, 0 = server
//                                                        default)
//                                  chaos <u64 seed>     (optional: arm a
//                                                        seeded helper-site
//                                                        ChaosPlan on the run)
//   kResult      server->client  "key value" lines: job, tenant, shard,
//                                digest, rw_checksum, seconds, reused,
//                                degraded, helper_faults, chunks_reclaimed,
//                                demotion, batch
//   kError       server->client  "job <u64>" (0 = not attributable), then
//                                "rule <kebab-id>", then "message <text>".
//                                Rules mirror the cli-* diagnostic contract:
//                                svc-bad-frame, svc-frame-too-big,
//                                svc-bad-header, svc-missing-tenant,
//                                svc-missing-job, svc-bad-field,
//                                svc-empty-spec, svc-spec-invalid,
//                                svc-spec-unsupported (the spec is valid but
//                                needs a runtime capability the service
//                                lacks — e.g. a reduction operand awaiting
//                                privatization; the message names the
//                                operand, its analysis class, and the merge
//                                operator), svc-duplicate-job,
//                                svc-queue-full, svc-draining,
//                                svc-job-too-large, svc-job-failed
//   kStat        client->server  empty payload
//   kStatReply   server->client  "key value" counter lines (svc.*, tenant.*,
//                                shard.*)
//   kDrain       client->server  empty payload: stop admitting, finish queued
//                                jobs, then reply and shut down
//   kDrainAck    server->client  "completed <u64>"
//
// encode_*/parse_* are pure (no sockets) so the contract is unit-testable;
// read_frame/write_frame do blocking I/O on an fd and never throw — a torn
// or oversized frame is a status, not an exception.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "casc/common/diagnostic.hpp"

namespace casc::svc {

enum class FrameType : std::uint8_t {
  kSubmit = 1,
  kResult = 2,
  kError = 3,
  kStat = 4,
  kStatReply = 5,
  kDrain = 6,
  kDrainAck = 7,
};

/// Largest accepted payload (bounds spec size; an oversized submit draws an
/// svc-frame-too-big error reply).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;  // 1 MiB

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Blocking frame I/O status.
enum class IoStatus : std::uint8_t {
  kOk,
  kEof,      ///< clean close before any byte of this frame
  kTorn,     ///< connection died mid-frame
  kTooBig,   ///< declared payload length exceeds kMaxFramePayload
  kBadType,  ///< unknown frame type byte
  kError,    ///< errno-level I/O failure
};

[[nodiscard]] const char* to_string(IoStatus status) noexcept;

/// Reads one frame.  On kTooBig/kBadType the prefix has been consumed but
/// the payload has not; the stream is not resynchronizable and the caller
/// should reply with an error frame and close.
[[nodiscard]] IoStatus read_frame(int fd, Frame& frame);

/// Writes one frame, looping over partial writes.  Uses MSG_NOSIGNAL so a
/// dead peer yields kError, not SIGPIPE.
[[nodiscard]] IoStatus write_frame(int fd, FrameType type,
                                   const std::string& payload);

// ---- submit ---------------------------------------------------------------

enum class HelperMode : std::uint8_t { kNone, kPrefetch, kRestructure };

[[nodiscard]] const char* to_string(HelperMode mode) noexcept;

struct SubmitRequest {
  std::string tenant;
  std::uint64_t job = 0;
  std::uint32_t weight = 1;
  HelperMode helper = HelperMode::kRestructure;
  std::uint64_t chunk_bytes = 0;  ///< 0 = server default
  std::optional<std::uint64_t> chaos_seed;
  std::string spec_text;
};

[[nodiscard]] std::string encode_submit(const SubmitRequest& req);

/// Parses a submit payload.  Returns false (and at least one error
/// diagnostic, rules svc-*) when the header is unusable; the spec text is
/// NOT parsed here — spec-level findings belong to the admission path.
[[nodiscard]] bool parse_submit(const std::string& payload, SubmitRequest& req,
                                common::DiagnosticList& diags);

// ---- result / error / stat ------------------------------------------------

struct ResultReply {
  std::uint64_t job = 0;
  std::string tenant;
  unsigned shard = 0;
  std::uint64_t digest = 0;
  std::uint64_t rw_checksum = 0;
  double seconds = 0.0;
  bool reused = false;    ///< MaterializedLoop came from the shard's pool
  bool degraded = false;  ///< fail-soft degradation during the run
  std::uint64_t helper_faults = 0;
  std::uint64_t chunks_reclaimed = 0;
  unsigned demotion = 0;
  std::uint64_t batch = 0;  ///< dispatch batch this job rode in
};

[[nodiscard]] std::string encode_result(const ResultReply& reply);
[[nodiscard]] bool parse_result(const std::string& payload, ResultReply& reply);

struct ErrorReply {
  std::uint64_t job = 0;  ///< 0 when the error is not attributable to a job
  std::string rule;
  std::string message;
};

[[nodiscard]] std::string encode_error(const ErrorReply& reply);
[[nodiscard]] bool parse_error(const std::string& payload, ErrorReply& reply);

/// Stat payloads are flat "key value" counter lines.
[[nodiscard]] std::string encode_stats(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters);
[[nodiscard]] bool parse_stats(
    const std::string& payload,
    std::vector<std::pair<std::string, std::uint64_t>>& counters);

}  // namespace casc::svc
