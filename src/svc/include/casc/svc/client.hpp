// Blocking client for the casc::svc wire protocol — the engine behind
// cascctl and the soak harness's --daemon tenants.
//
// One SvcClient is one connection.  Submission is pipelined: send any number
// of kSubmit frames, then read replies as they arrive (the server may
// reorder completions across jobs, so replies carry the job id).  Not
// thread-safe; use one client per tenant thread.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "casc/svc/protocol.hpp"

namespace casc::svc {

/// One server->client frame, decoded.
struct Reply {
  enum class Kind : std::uint8_t {
    kResult,    ///< result is valid
    kError,     ///< error is valid
    kStatReply, ///< counters is valid
    kDrainAck,  ///< drain_completed is valid
    kClosed,    ///< server closed the connection (EOF)
    kProtocol,  ///< torn frame / undecodable payload — connection unusable
  };
  Kind kind = Kind::kProtocol;
  ResultReply result;
  ErrorReply error;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::uint64_t drain_completed = 0;
};

class SvcClient {
 public:
  SvcClient() = default;
  ~SvcClient() { close(); }

  SvcClient(const SvcClient&) = delete;
  SvcClient& operator=(const SvcClient&) = delete;

  /// Connects to the server's Unix-domain socket.  Returns false (with the
  /// errno text in last_error()) on failure.
  [[nodiscard]] bool connect(const std::string& socket_path);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one submit frame (does not wait for the reply).
  [[nodiscard]] bool send_submit(const SubmitRequest& req);
  /// Sends a stat request frame.
  [[nodiscard]] bool send_stat();
  /// Sends a drain frame (server finishes queued jobs, acks, shuts down).
  [[nodiscard]] bool send_drain();

  /// Blocks for the next server frame.  kClosed / kProtocol leave the
  /// connection unusable.
  [[nodiscard]] Reply read_reply();

  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }

  /// Raw fd, for tests that need to speak malformed bytes.
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  std::string last_error_;
};

}  // namespace casc::svc
