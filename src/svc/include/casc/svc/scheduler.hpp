// Admission control and tenant-fair dispatch for casc::svc.
//
// One bounded, multi-tenant job queue feeding every shard:
//
//   * Admission is a hard bound on TOTAL queued jobs (queue_cap).  A full
//     queue rejects instantly — the connection layer turns that into an
//     svc-queue-full backpressure reply — so heavy traffic degrades into
//     fast rejections, never into unbounded memory or latency.
//   * Dispatch is weighted round-robin with per-tenant credits (the classic
//     WRR scheme from the MPI dynamic-loop-scheduling literature's
//     shared-queue corner): each cycle visits every tenant that has work and
//     grants it up to `weight` jobs.  A tenant with weight w gets a w/W share
//     of dispatch slots under contention and can never be starved — every
//     cycle it is visited once before any tenant is visited twice.
//   * Batches preserve key locality: one pop_batch() call drains up to
//     min(credit, batch_max) consecutive jobs of ONE tenant, which is what
//     lets the shard's MaterializedLoop pool hit (tenants overwhelmingly
//     resubmit the same specs back to back).
//
// Duplicate job ids (per tenant, over the server's lifetime) are rejected at
// admission so replies are unambiguous.
//
// Thread-safe; every method may be called from any thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "casc/loopir/loop_spec.hpp"
#include "casc/svc/protocol.hpp"

namespace casc::svc {

/// One admitted job: the parsed request plus the reply hooks the executing
/// shard invokes (exactly one of them, exactly once).
struct JobTicket {
  SubmitRequest request;
  loopir::LoopSpec spec;  ///< parsed & semantically valid at admission
  std::function<void(const ResultReply&)> on_result;
  std::function<void(const ErrorReply&)> on_error;
};

enum class Admit : std::uint8_t {
  kAccepted,
  kQueueFull,     ///< backpressure: bounded queue at capacity
  kDraining,      ///< server is draining; no new work
  kDuplicateJob,  ///< (tenant, job id) was already submitted
};

[[nodiscard]] const char* to_string(Admit admit) noexcept;

class TenantScheduler {
 public:
  explicit TenantScheduler(std::size_t queue_cap);

  TenantScheduler(const TenantScheduler&) = delete;
  TenantScheduler& operator=(const TenantScheduler&) = delete;

  /// Admission: O(1) under one lock.  On kAccepted the ticket is queued and
  /// the tenant's weight is updated to request.weight.
  [[nodiscard]] Admit submit(JobTicket&& job);

  /// Blocks until work is available, then moves up to `max_jobs` jobs of the
  /// WRR-selected tenant into `out` (cleared first).  Returns false when no
  /// work will ever arrive again: shutdown(), or drain() with empty queues.
  [[nodiscard]] bool pop_batch(std::size_t max_jobs, std::vector<JobTicket>& out);

  /// Completion accounting for jobs previously popped (n jobs of `tenant`).
  void note_done(const std::string& tenant, std::size_t n);

  /// Stops admissions (subsequent submits -> kDraining); queued jobs still
  /// dispatch.  Idempotent.
  void drain();

  /// Stops everything: wakes poppers (pop_batch -> false) and discards any
  /// still-queued jobs, invoking their on_error with svc-draining.
  void shutdown();

  /// Blocks until every admitted job has completed (queues empty and no job
  /// between pop_batch and note_done).  Meaningful after drain().
  void wait_idle();

  [[nodiscard]] bool draining() const;
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::size_t in_flight() const;

  struct TenantStats {
    std::uint32_t weight = 1;
    std::uint64_t submitted = 0;  ///< accepted jobs
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;  ///< queue-full / draining / duplicate
  };
  /// Snapshot, sorted by tenant name.
  [[nodiscard]] std::vector<std::pair<std::string, TenantStats>> tenant_stats()
      const;

 private:
  struct Tenant {
    std::deque<JobTicket> queue;
    std::unordered_set<std::uint64_t> seen_jobs;
    std::uint32_t weight = 1;
    std::uint32_t credit = 0;  ///< dispatch slots left this WRR cycle
    bool in_ring = false;
    TenantStats stats;
  };

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::unordered_map<std::string, Tenant> tenants_;
  std::deque<std::string> ring_;  ///< active tenants in WRR visit order
  std::size_t queue_cap_;
  std::size_t queued_ = 0;
  std::size_t in_flight_ = 0;
  bool draining_ = false;
  bool shutdown_ = false;
};

}  // namespace casc::svc
