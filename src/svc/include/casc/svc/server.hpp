// cascd's engine: a multi-tenant cascade service over a Unix-domain socket.
//
// Topology: one listener thread accepts connections; one handler thread per
// connection reads frames and performs admission (parse + validate + bounded
// enqueue, with error replies for everything malformed or rejected); N shard
// threads each own a private CascadeExecutor — N independent, concurrently
// spinning token rings — plus a MaterializedLoop reuse pool, and pull
// tenant-fair batches from the shared TenantScheduler.  Results are written
// back on the submitting connection from the shard thread (per-connection
// write lock).
//
// Core partitioning: with pin_shards, shard s's executor workers are pinned
// to the contiguous CPU slice [s*threads_per_shard, (s+1)*threads_per_shard)
// (mod the machine), so rings do not migrate onto each other's cores.
//
// Fail-soft: each shard's executor runs the PR 6 Resilience policy, so
// helper-site faults (including per-job seeded chaos) degrade instead of
// aborting.  If a job still escapes with an exception (an exec-phase fault
// or internal error), the job is answered with svc-job-failed and charged to
// the shard; at max_shard_faults the shard is quarantined — it stops pulling
// work and the remaining shards absorb the load — unless it is the last
// shard standing, which keeps executing like worker 0 of a cascade.
//
// Lifecycle: start() binds and spawns everything; a kDrain frame stops
// admission, lets the queues run dry, acks, and stops the server; stop() is
// the hard variant (queued jobs are answered with svc-draining).  wait()
// blocks until either form of shutdown has finished.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "casc/svc/scheduler.hpp"

namespace casc::exec {
class LoopPool;
}
namespace casc::rt {
class CascadeExecutor;
}

namespace casc::svc {

struct SvcConfig {
  std::string socket_path;
  /// Concurrent token rings (one CascadeExecutor each).
  unsigned num_shards = 1;
  /// Workers per ring (the shard thread is worker 0 of its executor).
  unsigned threads_per_shard = 2;
  /// Bound on TOTAL queued jobs across tenants (admission control).
  std::size_t queue_cap = 1024;
  /// Max jobs one pop_batch dispatch may carry (single-tenant, key-local).
  std::size_t batch_max = 32;
  /// Chunk byte budget for jobs that do not set one.
  std::uint64_t default_chunk_bytes = 64 * 1024;
  /// Admission cap on a job's trip count (svc-job-too-large beyond it).
  std::uint64_t max_job_trip = 1ull << 24;
  /// Pin each shard's workers to its own contiguous CPU slice.
  bool pin_shards = false;
  /// Job failures tolerated per shard before it is quarantined (the last
  /// live shard is never quarantined).
  unsigned max_shard_faults = 3;
  /// Test seam: runs on the shard thread immediately before each job
  /// executes; a throw is accounted exactly like a job failure.  Null in
  /// production.
  std::function<void(unsigned shard, const JobTicket& job)> before_execute;
};

class SvcServer {
 public:
  explicit SvcServer(SvcConfig config);
  ~SvcServer();

  SvcServer(const SvcServer&) = delete;
  SvcServer& operator=(const SvcServer&) = delete;

  /// Binds the socket (unlinking a stale one) and spawns listener + shards.
  /// Throws CheckFailure if the socket cannot be bound.
  void start();

  /// Blocks until the server has stopped (drain frame or stop()) and every
  /// thread has been joined.
  void wait();

  /// Hard stop: rejects queued jobs with svc-draining, closes connections,
  /// joins all threads.  Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }

  /// Flat counter snapshot (svc.*, tenant.*, shard.*) — the kStat payload.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> stats() const;

 private:
  struct Connection;
  struct ShardState {
    std::atomic<std::uint64_t> jobs{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> pool_hits{0};
    std::atomic<std::uint64_t> pool_misses{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> chaos_jobs{0};
    std::atomic<std::uint64_t> faults{0};
    std::atomic<bool> quarantined{false};
  };

  void listener_main();
  void handle_connection(std::shared_ptr<Connection> conn);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     const std::string& payload);
  void shard_main(unsigned shard_id);
  /// Executes one ticket on shard `shard_id`; returns false when the job
  /// escaped with an exception (already answered + charged).
  bool execute_job(unsigned shard_id, exec::LoopPool& pool,
                   rt::CascadeExecutor& executor, JobTicket& job,
                   std::uint64_t batch_id);
  /// Initiates shutdown without joining (callable from server threads).
  void request_stop();
  void join_all();

  SvcConfig config_;
  TenantScheduler scheduler_;
  int listen_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> joined_{false};
  std::mutex lifecycle_mutex_;  ///< serializes stop()/wait() joins

  std::thread listener_;
  std::vector<std::thread> shards_;
  std::vector<std::unique_ptr<ShardState>> shard_state_;
  std::atomic<unsigned> live_shards_{0};
  std::atomic<std::uint64_t> batch_counter_{0};
  std::atomic<std::uint64_t> reply_failures_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};

  std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> handlers_;
};

}  // namespace casc::svc
