#include "casc/svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace casc::svc {

bool SvcClient::connect(const std::string& socket_path) {
  close();
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    last_error_ = "socket path too long for AF_UNIX";
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    last_error_ = std::string("connect(") + socket_path +
                  "): " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  last_error_.clear();
  return true;
}

void SvcClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SvcClient::send_submit(const SubmitRequest& req) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return false;
  }
  const IoStatus status = write_frame(fd_, FrameType::kSubmit, encode_submit(req));
  if (status != IoStatus::kOk) {
    last_error_ = std::string("submit write failed: ") + to_string(status);
    return false;
  }
  return true;
}

bool SvcClient::send_stat() {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return false;
  }
  const IoStatus status = write_frame(fd_, FrameType::kStat, "");
  if (status != IoStatus::kOk) {
    last_error_ = std::string("stat write failed: ") + to_string(status);
    return false;
  }
  return true;
}

bool SvcClient::send_drain() {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return false;
  }
  const IoStatus status = write_frame(fd_, FrameType::kDrain, "");
  if (status != IoStatus::kOk) {
    last_error_ = std::string("drain write failed: ") + to_string(status);
    return false;
  }
  return true;
}

Reply SvcClient::read_reply() {
  Reply reply;
  if (fd_ < 0) {
    last_error_ = "not connected";
    return reply;
  }
  Frame frame;
  const IoStatus status = read_frame(fd_, frame);
  if (status == IoStatus::kEof) {
    reply.kind = Reply::Kind::kClosed;
    return reply;
  }
  if (status != IoStatus::kOk) {
    last_error_ = std::string("read failed: ") + to_string(status);
    return reply;  // kProtocol
  }
  switch (frame.type) {
    case FrameType::kResult:
      if (parse_result(frame.payload, reply.result)) {
        reply.kind = Reply::Kind::kResult;
      } else {
        last_error_ = "undecodable result payload";
      }
      return reply;
    case FrameType::kError:
      if (parse_error(frame.payload, reply.error)) {
        reply.kind = Reply::Kind::kError;
      } else {
        last_error_ = "undecodable error payload";
      }
      return reply;
    case FrameType::kStatReply:
      if (parse_stats(frame.payload, reply.counters)) {
        reply.kind = Reply::Kind::kStatReply;
      } else {
        last_error_ = "undecodable stat payload";
      }
      return reply;
    case FrameType::kDrainAck: {
      // Payload: "completed <u64>".
      reply.drain_completed = 0;
      const std::string& p = frame.payload;
      const std::string key = "completed ";
      if (p.rfind(key, 0) == 0) {
        reply.drain_completed = std::strtoull(p.c_str() + key.size(), nullptr, 10);
      }
      reply.kind = Reply::Kind::kDrainAck;
      return reply;
    }
    default:
      last_error_ = "unexpected server frame type";
      return reply;  // kProtocol
  }
}

}  // namespace casc::svc
