#include "casc/sim/cache.hpp"

#include "casc/common/align.hpp"
#include "casc/common/check.hpp"

namespace casc::sim {

using common::is_pow2;
using common::log2_floor;

CacheStats& CacheStats::operator+=(const CacheStats& o) noexcept {
  accesses += o.accesses;
  hits += o.hits;
  misses += o.misses;
  read_misses += o.read_misses;
  write_misses += o.write_misses;
  evictions += o.evictions;
  writebacks += o.writebacks;
  invalidations += o.invalidations;
  upgrades += o.upgrades;
  return *this;
}

CacheStats operator+(CacheStats a, const CacheStats& b) noexcept { return a += b; }

Cache::Cache(const CacheConfig& config) : config_(config) {
  CASC_CHECK(config_.size_bytes > 0, "cache size must be positive");
  CASC_CHECK(is_pow2(config_.line_size), "line size must be a power of two");
  CASC_CHECK(config_.associativity > 0, "associativity must be positive");
  CASC_CHECK(config_.size_bytes %
                     (static_cast<std::uint64_t>(config_.line_size) * config_.associativity) ==
                 0,
             "capacity must be a whole number of sets");
  const std::uint64_t sets = config_.num_sets();
  CASC_CHECK(is_pow2(sets), "number of sets must be a power of two");
  set_mask_ = sets - 1;
  line_shift_ = log2_floor(config_.line_size);
  ways_.resize(sets * config_.associativity);
}

std::uint64_t Cache::set_index(std::uint64_t addr) const noexcept {
  return (addr >> line_shift_) & set_mask_;
}

const Cache::Way* Cache::find(std::uint64_t addr) const noexcept {
  const std::uint64_t tag = addr >> line_shift_;
  const Way* set = &ways_[set_index(addr) * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (set[w].state != LineState::kInvalid && set[w].tag == tag) return &set[w];
  }
  return nullptr;
}

Cache::Way* Cache::find(std::uint64_t addr) noexcept {
  return const_cast<Way*>(static_cast<const Cache*>(this)->find(addr));
}

Cache::Lookup Cache::peek(std::uint64_t addr) const noexcept {
  const Way* way = find(addr);
  if (way == nullptr) return {};
  return {true, way->state};
}

Cache::Lookup Cache::touch(std::uint64_t addr) noexcept {
  Way* way = find(addr);
  if (way == nullptr) return {};
  way->lru_stamp = ++lru_clock_;
  return {true, way->state};
}

Cache::Victim Cache::insert(std::uint64_t addr, LineState state) {
  CASC_CHECK(state != LineState::kInvalid, "cannot insert an invalid line");
  CASC_CHECK(find(addr) == nullptr, "line already present; use set_state");
  Way* set = &ways_[set_index(addr) * config_.associativity];
  Way* slot = nullptr;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (set[w].state == LineState::kInvalid) {
      slot = &set[w];
      break;
    }
  }
  Victim victim;
  if (slot == nullptr) {
    // Evict the least-recently-used way of the set.
    slot = &set[0];
    for (std::uint32_t w = 1; w < config_.associativity; ++w) {
      if (set[w].lru_stamp < slot->lru_stamp) slot = &set[w];
    }
    victim.valid = true;
    victim.line_addr = slot->tag << line_shift_;
    victim.state = slot->state;
  }
  slot->tag = addr >> line_shift_;
  slot->state = state;
  slot->lru_stamp = ++lru_clock_;
  return victim;
}

void Cache::set_state(std::uint64_t addr, LineState state) {
  Way* way = find(addr);
  CASC_CHECK(way != nullptr, "set_state on a line that is not present");
  way->state = state;
}

LineState Cache::invalidate(std::uint64_t addr) noexcept {
  Way* way = find(addr);
  if (way == nullptr) return LineState::kInvalid;
  const LineState old = way->state;
  way->state = LineState::kInvalid;
  return old;
}

std::uint64_t Cache::flush_all() noexcept {
  std::uint64_t dirty = 0;
  for (Way& way : ways_) {
    if (way.state == LineState::kModified) ++dirty;
    way.state = LineState::kInvalid;
  }
  return dirty;
}

std::uint64_t Cache::valid_line_count() const noexcept {
  std::uint64_t n = 0;
  for (const Way& way : ways_) {
    if (way.state != LineState::kInvalid) ++n;
  }
  return n;
}

CacheStats Cache::total_stats() const noexcept {
  CacheStats total;
  for (const CacheStats& s : stats_) total += s;
  return total;
}

void Cache::reset_stats() noexcept {
  for (CacheStats& s : stats_) s = CacheStats{};
}

}  // namespace casc::sim
