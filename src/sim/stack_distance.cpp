#include "casc/sim/stack_distance.hpp"

#include "casc/common/align.hpp"
#include "casc/common/check.hpp"

namespace casc::sim {

StackDistance::StackDistance(std::uint32_t line_size) : line_size_(line_size) {
  CASC_CHECK(common::is_pow2(line_size), "line size must be a power of two");
}

void StackDistance::access(std::uint64_t addr, std::uint32_t size) {
  CASC_CHECK(size > 0, "zero-size access");
  const std::uint64_t first = addr & ~static_cast<std::uint64_t>(line_size_ - 1);
  const std::uint64_t last =
      (addr + size - 1) & ~static_cast<std::uint64_t>(line_size_ - 1);
  for (std::uint64_t line = first; line <= last; line += line_size_) {
    access_line(line);
  }
}

void StackDistance::fenwick_add(std::size_t pos, int delta) {
  for (std::size_t i = pos + 1; i <= fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i - 1] += static_cast<std::uint64_t>(static_cast<std::int64_t>(delta));
  }
}

std::uint64_t StackDistance::fenwick_sum(std::size_t pos) const {
  std::uint64_t sum = 0;
  for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) {
    sum += fenwick_[i - 1];
  }
  return sum;
}

void StackDistance::access_line(std::uint64_t line) {
  const std::uint64_t now = total_;
  ++total_;
  // Grow the Fenwick tree to cover timestamp `now`.
  if (fenwick_.size() <= now) {
    // Rebuild into the next power-of-two capacity, preserving live marks.
    std::vector<std::uint64_t> live_positions;
    live_positions.reserve(last_time_.size());
    for (const auto& [l, t] : last_time_) live_positions.push_back(t);
    std::size_t capacity = fenwick_.empty() ? 1024 : fenwick_.size() * 2;
    while (capacity <= now) capacity *= 2;
    fenwick_.assign(capacity, 0);
    for (std::uint64_t t : live_positions) {
      fenwick_add(static_cast<std::size_t>(t), +1);
    }
  }

  const auto it = last_time_.find(line);
  if (it == last_time_.end()) {
    ++cold_;
  } else {
    // Distance = number of live (distinct-line latest) timestamps strictly
    // after this line's previous access.
    const std::uint64_t later = fenwick_sum(static_cast<std::size_t>(now - 1)) -
                                fenwick_sum(static_cast<std::size_t>(it->second));
    ++histogram_[later];
    fenwick_add(static_cast<std::size_t>(it->second), -1);
  }
  fenwick_add(static_cast<std::size_t>(now), +1);
  last_time_[line] = now;
}

double StackDistance::predicted_miss_ratio(std::uint64_t capacity_lines) const {
  if (total_ == 0) return 0.0;
  std::uint64_t misses = cold_;
  for (const auto& [distance, count] : histogram_) {
    if (distance >= capacity_lines) misses += count;
  }
  return static_cast<double>(misses) / static_cast<double>(total_);
}

std::uint64_t StackDistance::capacity_for_miss_ratio(double target) const {
  CASC_CHECK(target >= 0.0 && target <= 1.0, "target miss ratio out of [0,1]");
  if (total_ == 0) return 1;
  if (static_cast<double>(cold_) / static_cast<double>(total_) > target) return 0;
  // Walk capacities at histogram breakpoints (distances + 1).
  std::uint64_t candidate = 1;
  for (const auto& [distance, count] : histogram_) {
    (void)count;
    if (predicted_miss_ratio(candidate) <= target) return candidate;
    candidate = distance + 1;
  }
  // Beyond the largest observed distance only cold misses remain, and those
  // were checked against the target above.
  return candidate;
}

}  // namespace casc::sim
