#include "casc/sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "casc/common/check.hpp"

namespace casc::sim {

MachineConfig MachineConfig::pentium_pro(unsigned procs) {
  MachineConfig c;
  c.name = "PentiumPro";
  c.num_processors = procs;
  c.l1 = {"L1", 8 * 1024, 32, 2, 3};
  c.l2 = {"L2", 512 * 1024, 32, 4, 7};
  c.memory_latency = 58;
  c.c2c_latency = 70;
  c.upgrade_latency = 12;
  c.control_transfer_cycles = 120;
  c.chunk_startup_cycles = 250;
  c.compiler_prefetch = false;
  // Non-blocking caches, four outstanding requests (paper §3.2).
  c.miss_overlap_fraction = 0.4;
  c.miss_overlap_window = 4;
  return c;
}

MachineConfig MachineConfig::r10000(unsigned procs) {
  MachineConfig c;
  c.name = "R10000";
  c.num_processors = procs;
  c.l1 = {"L1", 32 * 1024, 32, 2, 3};
  c.l2 = {"L2", 2 * 1024 * 1024, 128, 2, 6};
  // Table 1 reports 100-200 cycles; we charge a value in the lower half of
  // that band (the R10000's aggressive overlap makes the effective cost of a
  // serialized miss land below the worst case).
  c.memory_latency = 115;
  c.c2c_latency = 180;
  c.upgrade_latency = 20;
  c.control_transfer_cycles = 500;
  c.chunk_startup_cycles = 600;
  // The MIPSpro compiler inserts software prefetches in optimized code
  // (paper §3.3), hiding much of the latency of streaming misses.
  c.compiler_prefetch = true;
  c.stream_miss_discount = 0.25;
  c.miss_overlap_fraction = 0.4;
  c.miss_overlap_window = 4;
  return c;
}

MachineConfig MachineConfig::future(double memory_scale, unsigned procs) {
  CASC_CHECK(memory_scale >= 1.0, "future machines have slower memory, not faster");
  MachineConfig c = pentium_pro(procs);
  c.name = "Future-x" + std::to_string(static_cast<int>(memory_scale));
  c.memory_latency = static_cast<std::uint32_t>(std::lround(58.0 * memory_scale));
  c.c2c_latency = static_cast<std::uint32_t>(std::lround(70.0 * memory_scale));
  // Control transfer is itself a memory round trip, so it scales too.
  c.control_transfer_cycles =
      static_cast<std::uint32_t>(std::lround(120.0 * memory_scale));
  c.chunk_startup_cycles =
      static_cast<std::uint32_t>(std::lround(250.0 * memory_scale));
  return c;
}

Processor::Processor(unsigned id, const MachineConfig& config)
    : id_(id), l1_(config.l1), l2_(config.l2),
      recent_miss_lines_(kReMissTableSize, ~std::uint64_t{0}) {
  for (auto& slot : stream_slots_) slot = ~std::uint64_t{0};
}

Machine::Machine(const MachineConfig& config) : config_(config) {
  CASC_CHECK(config_.num_processors >= 1, "need at least one processor");
  CASC_CHECK(config_.l1.line_size <= config_.l2.line_size,
             "inclusion requires L2 lines at least as large as L1 lines");
  procs_.reserve(config_.num_processors);
  for (unsigned p = 0; p < config_.num_processors; ++p) {
    procs_.push_back(std::make_unique<Processor>(p, config_));
  }
}

Processor& Machine::processor(unsigned p) {
  CASC_CHECK(p < procs_.size(), "processor id out of range");
  return *procs_[p];
}

const Processor& Machine::processor(unsigned p) const {
  CASC_CHECK(p < procs_.size(), "processor id out of range");
  return *procs_[p];
}

AccessOutcome Machine::access(unsigned p, const MemRef& ref, Phase phase) {
  CASC_CHECK(p < procs_.size(), "processor id out of range");
  CASC_CHECK(ref.size > 0, "zero-size access");
  const std::uint64_t line_size = config_.l1.line_size;
  const std::uint64_t first_line = ref.addr & ~(line_size - 1);
  const std::uint64_t last_line = (ref.addr + ref.size - 1) & ~(line_size - 1);
  if (first_line == last_line) {
    return access_line(p, ref.addr, ref.type, phase);
  }
  // Rare path: the reference straddles L1 lines; issue one access per line
  // and report the slowest service level with the summed latency.
  AccessOutcome total;
  for (std::uint64_t line = first_line; line <= last_line; line += line_size) {
    const AccessOutcome part = access_line(p, line, ref.type, phase);
    total.latency += part.latency;
    if (static_cast<int>(part.level) > static_cast<int>(total.level)) {
      total.level = part.level;
    }
  }
  return total;
}

AccessOutcome Machine::access_line(unsigned p, std::uint64_t addr, AccessType type,
                                   Phase phase) {
  Processor& proc = *procs_[p];
  const bool is_write = type == AccessType::kWrite;
  Cache& l1 = proc.l1();
  Cache& l2 = proc.l2();
  CacheStats& s1 = l1.stats(phase);
  CacheStats& s2 = l2.stats(phase);

  ++s1.accesses;
  const Cache::Lookup h1 = l1.touch(addr);
  if (h1.hit) {
    proc.miss_chain_ = 0;
    ++s1.hits;
    std::uint64_t latency = config_.l1.hit_latency;
    if (is_write && h1.state != LineState::kModified) {
      // Write to a clean L1 line: obtain exclusive ownership at L2 if needed,
      // then mark both levels dirty.
      const Cache::Lookup h2 = l2.peek(addr);
      CASC_CHECK(h2.hit, "inclusion violated: L1 line missing from L2");
      if (h2.state == LineState::kShared) {
        latency += bus_upgrade(p, l2.line_base(addr), phase);
        ++s2.upgrades;
        l2.set_state(addr, LineState::kModified);
      }
      l1.set_state(addr, LineState::kModified);
      if (l2.peek(addr).state != LineState::kModified) {
        l2.set_state(addr, LineState::kModified);
      }
    }
    return {HitLevel::kL1, latency};
  }
  ++s1.misses;
  (is_write ? s1.write_misses : s1.read_misses)++;

  ++s2.accesses;
  const Cache::Lookup h2 = l2.touch(addr);
  if (h2.hit) {
    proc.miss_chain_ = 0;
    ++s2.hits;
    std::uint64_t latency = config_.l2.hit_latency;
    if (is_write && h2.state != LineState::kModified) {
      if (h2.state == LineState::kShared) {
        latency += bus_upgrade(p, l2.line_base(addr), phase);
        ++s2.upgrades;
      }
      // Exclusive -> Modified is silent (the MESI payoff).
      l2.set_state(addr, LineState::kModified);
    }
    fill_l1(proc, l1.line_base(addr), is_write, phase);
    return {HitLevel::kL2, latency};
  }
  ++s2.misses;
  (is_write ? s2.write_misses : s2.read_misses)++;

  const BusFetch fetch = bus_fetch(p, l2.line_base(addr), is_write, phase);
  fill_l2(proc, l2.line_base(addr), fetch.install, phase);
  fill_l1(proc, l1.line_base(addr), is_write, phase);
  return {fetch.from_remote ? HitLevel::kRemoteCache : HitLevel::kMemory, fetch.latency};
}

std::uint64_t Machine::bus_upgrade(unsigned p, std::uint64_t l2_line, Phase phase) {
  ++bus_stats_.transactions;
  for (auto& qp : procs_) {
    Processor& q = *qp;
    if (q.id() == p) continue;
    const LineState st2 = q.l2().invalidate(l2_line);
    if (st2 != LineState::kInvalid) {
      CASC_CHECK(st2 == LineState::kShared,
                 "MESI violation: upgrade while a remote non-Shared copy exists");
      ++q.l2().stats(phase).invalidations;
      ++bus_stats_.invalidations_sent;
      // Kill any L1 fragments of the (possibly larger) L2 line.
      for (std::uint64_t a = l2_line; a < l2_line + config_.l2.line_size;
           a += config_.l1.line_size) {
        if (q.l1().invalidate(a) != LineState::kInvalid) {
          ++q.l1().stats(phase).invalidations;
        }
      }
    }
  }
  return config_.upgrade_latency;
}

Machine::BusFetch Machine::bus_fetch(unsigned p, std::uint64_t line_addr, bool for_write,
                                     Phase phase) {
  Processor& proc = *procs_[p];
  ++bus_stats_.transactions;
  BusFetch result;
  bool remote_copy_exists = false;

  // Snoop: look for a remote Modified copy to supply the data, and downgrade
  // or invalidate other copies as the request demands.
  for (auto& qp : procs_) {
    Processor& q = *qp;
    if (q.id() == p) continue;
    const Cache::Lookup remote = q.l2().peek(line_addr);
    if (!remote.hit) continue;
    remote_copy_exists = true;
    if (remote.state == LineState::kModified) {
      // Remote dirty line: it is written back and supplied cache-to-cache.
      ++q.l2().stats(phase).writebacks;
      ++bus_stats_.memory_writebacks;
      ++bus_stats_.cache_to_cache;
      result.from_remote = true;
      result.latency = config_.c2c_latency;
      if (for_write) {
        q.l2().invalidate(line_addr);
        ++q.l2().stats(phase).invalidations;
        ++bus_stats_.invalidations_sent;
      } else {
        q.l2().set_state(line_addr, LineState::kShared);
      }
      // The supplier's L1 fragments are stale either way for a write, and may
      // hold the dirty data for a read; conservatively invalidate them (the
      // L2 line just carried the merged data to memory).
      for (std::uint64_t a = line_addr; a < line_addr + config_.l2.line_size;
           a += config_.l1.line_size) {
        if (q.l1().invalidate(a) != LineState::kInvalid) {
          ++q.l1().stats(phase).invalidations;
        }
      }
    } else if (for_write) {
      // Remote Shared/Exclusive copy under a write request: invalidate.
      q.l2().invalidate(line_addr);
      ++q.l2().stats(phase).invalidations;
      ++bus_stats_.invalidations_sent;
      for (std::uint64_t a = line_addr; a < line_addr + config_.l2.line_size;
           a += config_.l1.line_size) {
        if (q.l1().invalidate(a) != LineState::kInvalid) {
          ++q.l1().stats(phase).invalidations;
        }
      }
    } else if (remote.state == LineState::kExclusive) {
      // A read joins a clean sole owner: both end up Shared.
      q.l2().set_state(line_addr, LineState::kShared);
    }
  }

  result.install = for_write ? LineState::kModified
                   : remote_copy_exists ? LineState::kShared
                                        : LineState::kExclusive;

  // Classify the miss for the latency-hiding models.
  //
  // Re-miss: the line missed recently, i.e. it was fetched and then displaced
  // (a conflict or capacity victim).  Software prefetching cannot hide these
  // — a prefetch issued ahead of use is displaced just the same (paper §3.3:
  // prefetching hides latency "other than those [accesses] required for
  // conflict misses").
  // Multiplicative hash decorrelates the filter index from the address bits
  // — conflict-aligned streams would otherwise collide in the filter exactly
  // as they do in the cache it is trying to diagnose.
  static_assert(Processor::kReMissTableSize == 8192, "shift below assumes 2^13 slots");
  const std::size_t filter_idx = static_cast<std::size_t>(
      (line_addr * 0x9e3779b97f4a7c15ULL) >> (64 - 13));
  const bool re_miss = proc.recent_miss_lines_[filter_idx] == line_addr;
  proc.recent_miss_lines_[filter_idx] = line_addr;

  // Stream detection: does this line extend any of the processor's active
  // streams?  (The MIPSpro model prefetches multiple concurrent streams.)
  bool stream_hit = false;
  for (auto& slot : proc.stream_slots_) {
    if (line_addr == slot + config_.l2.line_size) {
      slot = line_addr;
      stream_hit = true;
      break;
    }
  }
  if (!stream_hit) {
    proc.stream_slots_[proc.stream_replace_] = line_addr;
    proc.stream_replace_ = (proc.stream_replace_ + 1) % Processor::kStreamSlots;
  }

  auto discounted = [](std::uint64_t latency, double fraction) {
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(latency) * fraction));
  };

  if (!result.from_remote) {
    ++bus_stats_.memory_reads;
    result.latency = config_.memory_latency;
  }
  if (config_.compiler_prefetch && stream_hit && !re_miss && !result.from_remote) {
    // The compiler's prefetch ran ahead on this stream and the line survived
    // until use.
    result.latency = discounted(config_.memory_latency, config_.stream_miss_discount);
    ++bus_stats_.stream_discounted;
  } else if (config_.miss_overlap_fraction < 1.0 && proc.miss_chain_ > 0 &&
             proc.miss_chain_ % config_.miss_overlap_window != 0) {
    // Non-blocking-cache overlap: this miss pipelines behind the previous one
    // instead of serializing after it (4 outstanding requests, paper §3.2).
    result.latency = discounted(result.latency, config_.miss_overlap_fraction);
    ++bus_stats_.overlapped_misses;
  }
  ++proc.miss_chain_;
  return result;
}

void Machine::fill_l2(Processor& proc, std::uint64_t line_addr, LineState state,
                      Phase phase) {
  const Cache::Victim victim = proc.l2().insert(line_addr, state);
  if (!victim.valid) return;
  ++proc.l2().stats(phase).evictions;
  // Inclusion: any L1 fragments of the victim must be dropped; a dirty L1
  // fragment means the victim carries the newest data out.
  bool victim_dirty = victim.state == LineState::kModified;
  for (std::uint64_t a = victim.line_addr; a < victim.line_addr + config_.l2.line_size;
       a += config_.l1.line_size) {
    const LineState l1_state = proc.l1().invalidate(a);
    if (l1_state != LineState::kInvalid) {
      ++proc.l1().stats(phase).invalidations;
      if (l1_state == LineState::kModified) victim_dirty = true;
    }
  }
  if (victim_dirty) {
    ++proc.l2().stats(phase).writebacks;
    ++bus_stats_.memory_writebacks;
  }
}

void Machine::fill_l1(Processor& proc, std::uint64_t line_addr, bool dirty, Phase phase) {
  const Cache::Victim victim =
      proc.l1().insert(line_addr, dirty ? LineState::kModified : LineState::kShared);
  if (!victim.valid) return;
  ++proc.l1().stats(phase).evictions;
  if (victim.state == LineState::kModified) {
    ++proc.l1().stats(phase).writebacks;
    // Inclusion guarantees the owning L2 line is still present; fold the
    // dirty data down into it.
    proc.l2().set_state(victim.line_addr, LineState::kModified);
  }
}

void Machine::flush_all_caches() noexcept {
  for (auto& proc : procs_) {
    proc->l1().flush_all();
    proc->l2().flush_all();
    for (auto& slot : proc->stream_slots_) slot = ~std::uint64_t{0};
    std::fill(proc->recent_miss_lines_.begin(), proc->recent_miss_lines_.end(),
              ~std::uint64_t{0});
    proc->miss_chain_ = 0;
  }
}

void Machine::reset_stats() noexcept {
  for (auto& proc : procs_) {
    proc->l1().reset_stats();
    proc->l2().reset_stats();
  }
  bus_stats_ = BusStats{};
}

CacheStats Machine::l1_stats(Phase phase) const noexcept {
  CacheStats total;
  for (const auto& proc : procs_) total += proc->l1().stats(phase);
  return total;
}

CacheStats Machine::l2_stats(Phase phase) const noexcept {
  CacheStats total;
  for (const auto& proc : procs_) total += proc->l2().stats(phase);
  return total;
}

CacheStats Machine::l1_stats_total() const noexcept {
  return l1_stats(Phase::kExec) + l1_stats(Phase::kHelper);
}

CacheStats Machine::l2_stats_total() const noexcept {
  return l2_stats(Phase::kExec) + l2_stats(Phase::kHelper);
}

}  // namespace casc::sim
