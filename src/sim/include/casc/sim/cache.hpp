// Set-associative cache with true-LRU replacement, write-back/write-allocate
// policy, and MSI line states.  One instance models one level of one
// processor's private hierarchy; coherence decisions are made by the Machine,
// which drives the state-transition API exposed here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "casc/sim/access.hpp"

namespace casc::sim {

/// Geometry and timing of one cache level (one row of the paper's Table 1).
struct CacheConfig {
  std::string name;                ///< e.g. "L1", for diagnostics
  std::uint64_t size_bytes = 0;    ///< total capacity; must be a multiple of line*assoc
  std::uint32_t line_size = 32;    ///< bytes per line; power of two
  std::uint32_t associativity = 2; ///< ways per set
  std::uint32_t hit_latency = 1;   ///< cycles charged when an access is serviced here

  [[nodiscard]] std::uint64_t num_sets() const noexcept {
    return size_bytes / (static_cast<std::uint64_t>(line_size) * associativity);
  }
};

/// MESI coherence state of a cached line.  kExclusive (clean, sole copy)
/// exists so that a write to data nobody else caches does not pay a bus
/// upgrade — essential for read-modify-write loops.
enum class LineState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

/// Per-level event counters, kept separately per cascaded-execution phase so
/// benches can report execution-phase misses (the critical path) apart from
/// helper-phase misses (hidden behind another processor's execution).
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;       ///< dirty lines pushed down / out
  std::uint64_t invalidations = 0;    ///< lines killed by remote writes
  std::uint64_t upgrades = 0;         ///< Shared->Modified transitions

  CacheStats& operator+=(const CacheStats& o) noexcept;
  [[nodiscard]] double miss_rate() const noexcept {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
};

CacheStats operator+(CacheStats a, const CacheStats& b) noexcept;

/// One set-associative cache array.  The cache stores tags and states only —
/// the simulator is execution-driven over synthetic address streams, so no
/// data payloads are kept.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Result of a tag probe.
  struct Lookup {
    bool hit = false;
    LineState state = LineState::kInvalid;
  };

  /// Probes for the line containing `addr` without modifying LRU or state.
  [[nodiscard]] Lookup peek(std::uint64_t addr) const noexcept;

  /// Probes for the line and, on a hit, promotes it to MRU.
  Lookup touch(std::uint64_t addr) noexcept;

  /// Describes a line displaced by insert().
  struct Victim {
    bool valid = false;              ///< a line was displaced
    std::uint64_t line_addr = 0;     ///< its base address
    LineState state = LineState::kInvalid;  ///< state at displacement time
  };

  /// Inserts the line containing `addr` in `state`, returning any displaced
  /// line (LRU victim of the set).  Precondition: the line is not present.
  Victim insert(std::uint64_t addr, LineState state);

  /// Sets the state of a present line.  Precondition: the line is present.
  void set_state(std::uint64_t addr, LineState state);

  /// Invalidates the line if present.  Returns the state it had (kInvalid if
  /// it was not present), so the caller can schedule a writeback for kModified.
  LineState invalidate(std::uint64_t addr) noexcept;

  /// Drops every line, returning the number that were Modified (the caller
  /// accounts for the implied writebacks).  Statistics are *not* reset.
  std::uint64_t flush_all() noexcept;

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

  /// Base address of the line containing `addr`.
  [[nodiscard]] std::uint64_t line_base(std::uint64_t addr) const noexcept {
    return addr & ~static_cast<std::uint64_t>(config_.line_size - 1);
  }

  /// Number of currently valid lines (test/diagnostic aid).
  [[nodiscard]] std::uint64_t valid_line_count() const noexcept;

  /// Set index the given address maps to (exposed for conflict-analysis
  /// tooling and tests).
  [[nodiscard]] std::uint64_t set_index(std::uint64_t addr) const noexcept;

  /// Mutable per-phase statistics; the Machine routes events into the bucket
  /// of the phase that issued the triggering access.
  CacheStats& stats(Phase phase) noexcept { return stats_[static_cast<int>(phase)]; }
  [[nodiscard]] const CacheStats& stats(Phase phase) const noexcept {
    return stats_[static_cast<int>(phase)];
  }
  /// Sum over phases.
  [[nodiscard]] CacheStats total_stats() const noexcept;

  void reset_stats() noexcept;

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;
    LineState state = LineState::kInvalid;
  };

  struct Slot {
    Way* way = nullptr;
  };

  [[nodiscard]] const Way* find(std::uint64_t addr) const noexcept;
  [[nodiscard]] Way* find(std::uint64_t addr) noexcept;

  CacheConfig config_;
  std::uint64_t set_mask_;
  std::uint32_t line_shift_;
  std::uint64_t lru_clock_ = 0;
  std::vector<Way> ways_;  // num_sets * associativity, set-major
  CacheStats stats_[kNumPhases];
};

}  // namespace casc::sim
