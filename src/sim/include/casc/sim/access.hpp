// Basic vocabulary types for the execution-driven memory simulator.
#pragma once

#include <cstdint>

namespace casc::sim {

/// Direction of a memory reference.
enum class AccessType : std::uint8_t { kRead, kWrite };

/// A single dynamic memory reference issued by a (simulated) processor.
struct MemRef {
  std::uint64_t addr = 0;   ///< byte address
  std::uint32_t size = 4;   ///< bytes touched (split across lines if needed)
  AccessType type = AccessType::kRead;
};

/// Where an access was serviced from.
enum class HitLevel : std::uint8_t {
  kL1,           ///< hit in the local first-level cache
  kL2,           ///< hit in the local second-level cache
  kRemoteCache,  ///< supplied by another processor's cache (dirty line)
  kMemory,       ///< serviced from main memory
};

/// Result of pushing one reference through a processor's hierarchy.
struct AccessOutcome {
  HitLevel level = HitLevel::kL1;
  std::uint64_t latency = 0;  ///< cycles charged to the issuing processor
};

/// Statistic bucket: which phase of cascaded execution issued the reference.
/// Plain sequential execution accounts everything to kExec.
enum class Phase : std::uint8_t { kExec = 0, kHelper = 1 };
inline constexpr int kNumPhases = 2;

}  // namespace casc::sim
