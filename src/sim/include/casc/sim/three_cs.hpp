// Classic three-Cs miss classification (Hill): replay a reference stream
// against one cache geometry and label every miss
//   - compulsory: the line was never referenced before;
//   - capacity:   a fully-associative LRU cache of the same capacity would
//                 also miss;
//   - conflict:   the set-associative cache misses but the fully-associative
//                 one would hit — i.e. the miss is caused by set mapping.
// This is the analytical backbone of the paper's argument: restructuring
// wins precisely where conflict misses dominate.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "casc/sim/cache.hpp"

namespace casc::sim {

/// Classified miss counts for one stream/geometry pair.
struct ThreeCs {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t compulsory = 0;
  std::uint64_t capacity = 0;
  std::uint64_t conflict = 0;

  [[nodiscard]] std::uint64_t misses() const noexcept {
    return compulsory + capacity + conflict;
  }
  [[nodiscard]] double conflict_fraction() const noexcept {
    const std::uint64_t m = misses();
    return m ? static_cast<double>(conflict) / static_cast<double>(m) : 0.0;
  }
};

/// Streaming classifier.  Feed it the raw (unfiltered) reference stream of
/// the level you want to study; it maintains the set-associative cache and a
/// same-capacity fully-associative LRU shadow side by side.
class MissClassifier {
 public:
  explicit MissClassifier(const CacheConfig& config);

  /// Classifies one reference (reads and writes are equivalent here).
  /// References spanning lines are split.
  void access(std::uint64_t addr, std::uint32_t size = 4);

  [[nodiscard]] const ThreeCs& counts() const noexcept { return counts_; }

 private:
  void access_line(std::uint64_t line_addr);

  Cache cache_;
  std::uint64_t capacity_lines_;
  // Fully-associative LRU shadow: recency list front = MRU.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> in_fa_;
  std::unordered_set<std::uint64_t> ever_seen_;
  ThreeCs counts_;
};

}  // namespace casc::sim
