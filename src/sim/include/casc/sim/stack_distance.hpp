// Reuse (LRU stack) distance analysis.  The stack distance of a reference is
// the number of *distinct* lines touched since the previous reference to the
// same line; a fully-associative LRU cache of C lines hits exactly the
// references with distance < C.  The histogram therefore predicts the miss
// ratio of every capacity at once — a compact way to characterize a loop's
// locality and to size chunks (the knee of the curve is the natural chunk
// footprint).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "casc/sim/cache.hpp"

namespace casc::sim {

/// Streaming stack-distance histogram over line-granular references.
/// O(log n) per access via an order-statistic structure built on a Fenwick
/// tree over access timestamps.
class StackDistance {
 public:
  /// `line_size` must be a power of two.
  explicit StackDistance(std::uint32_t line_size);

  /// Feeds one reference (split across lines if needed).
  void access(std::uint64_t addr, std::uint32_t size = 4);

  /// Number of references with finite stack distance exactly `d` is
  /// histogram()[d]; cold (first-touch) references are counted separately.
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& histogram() const noexcept {
    return histogram_;
  }
  [[nodiscard]] std::uint64_t cold_references() const noexcept { return cold_; }
  [[nodiscard]] std::uint64_t total_references() const noexcept { return total_; }

  /// Predicted miss ratio of a fully-associative LRU cache holding
  /// `capacity_lines` lines: (cold + refs with distance >= capacity) / total.
  [[nodiscard]] double predicted_miss_ratio(std::uint64_t capacity_lines) const;

  /// Smallest capacity (in lines) whose predicted miss ratio is at most
  /// `target`; returns 0 if even infinite capacity cannot reach it (cold
  /// misses alone exceed the target).
  [[nodiscard]] std::uint64_t capacity_for_miss_ratio(double target) const;

 private:
  void access_line(std::uint64_t line);
  void fenwick_add(std::size_t pos, int delta);
  [[nodiscard]] std::uint64_t fenwick_sum(std::size_t pos) const;  // prefix sum [0, pos]

  std::uint32_t line_size_;
  std::uint64_t total_ = 0;
  std::uint64_t cold_ = 0;
  std::map<std::uint64_t, std::uint64_t> histogram_;

  // Timestamped LRU bookkeeping: each line's last access time; the Fenwick
  // tree marks which timestamps are "live" (most recent for their line), so
  // the stack distance is the count of live timestamps after the line's own.
  std::unordered_map<std::uint64_t, std::uint64_t> last_time_;
  std::vector<std::uint64_t> fenwick_;  // grows with the access count
};

}  // namespace casc::sim
