// The simulated shared-memory multiprocessor: P processors, each with a
// private L1/L2 write-back hierarchy, joined by a snooping bus running an MSI
// invalidation protocol over main memory.  Latencies follow Table 1 of the
// paper; out-of-order/non-blocking overlap is approximated by an optional
// stream-prefetch discount (used to model the MIPSpro compiler's software
// prefetching on the R10000 — see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "casc/sim/access.hpp"
#include "casc/sim/cache.hpp"

namespace casc::sim {

/// Full description of a simulated machine (Table 1 plus the knobs the paper
/// reports in the text: control-transfer cost, compiler prefetching).
struct MachineConfig {
  std::string name;
  unsigned num_processors = 4;

  CacheConfig l1;  ///< per-processor first-level data cache
  CacheConfig l2;  ///< per-processor second-level cache (inclusive of L1)

  std::uint32_t memory_latency = 58;   ///< cycles to service an access from DRAM
  std::uint32_t c2c_latency = 58;      ///< cycles when a remote dirty line supplies data
  std::uint32_t upgrade_latency = 12;  ///< bus transaction for a Shared->Modified upgrade

  /// Cost of passing the execution token between processors (paper §3.3:
  /// ~120 cycles on the Pentium Pro, ~500 on the R10000).
  std::uint32_t control_transfer_cycles = 120;

  /// Fixed per-chunk cost of entering an execution phase beyond the flag
  /// itself: loop prologue/epilogue, register and loop-state reload, branch
  /// mispredictions on the fresh control path.  Together with the transfer
  /// cost this is what pushes the optimal chunk size above the L1 size
  /// (paper §3.3 / Figure 6).
  std::uint32_t chunk_startup_cycles = 250;

  /// Models compiler-inserted software prefetching (MIPSpro on the R10000):
  /// when successive memory-level misses walk consecutive lines, the miss
  /// penalty is discounted because the prefetch issued ahead of use.
  bool compiler_prefetch = false;
  /// Fraction of memory latency still charged on a detected-stream miss.
  double stream_miss_discount = 0.25;

  /// Models the machines' non-blocking caches ("allowing up to four
  /// outstanding requests to the L2 cache and to main memory", paper §3.2):
  /// within a chain of back-to-back bus-level misses, all but every
  /// `miss_overlap_window`-th miss overlap with their predecessors and are
  /// charged `miss_overlap_fraction` of the full latency.  A fraction of 1
  /// disables the model (the strict in-order default used by unit tests).
  double miss_overlap_fraction = 1.0;
  std::uint32_t miss_overlap_window = 4;

  /// Table 1 preset: 4-processor 200 MHz Pentium Pro PC server.
  static MachineConfig pentium_pro(unsigned procs = 4);
  /// Table 1 preset: 8-processor 194 MHz R10000 SGI Power Onyx.
  static MachineConfig r10000(unsigned procs = 8);
  /// A hypothetical future machine: Pentium Pro geometry with memory latency
  /// scaled by `memory_scale` (paper §3.4 motivation).
  static MachineConfig future(double memory_scale, unsigned procs = 4);
};

/// Aggregated machine-level coherence/bus counters.
struct BusStats {
  std::uint64_t transactions = 0;          ///< misses that reached the bus
  std::uint64_t cache_to_cache = 0;        ///< supplied by a remote dirty line
  std::uint64_t invalidations_sent = 0;    ///< remote copies killed by writes
  std::uint64_t memory_reads = 0;          ///< lines fetched from DRAM
  std::uint64_t memory_writebacks = 0;     ///< dirty lines written to DRAM
  std::uint64_t stream_discounted = 0;     ///< misses charged the prefetch discount
  std::uint64_t overlapped_misses = 0;     ///< misses charged the MLP overlap discount
};

/// One simulated processor: private L1 + L2 and a stream-detection register.
class Processor {
 public:
  Processor(unsigned id, const MachineConfig& config);

  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] Cache& l1() noexcept { return l1_; }
  [[nodiscard]] Cache& l2() noexcept { return l2_; }
  [[nodiscard]] const Cache& l1() const noexcept { return l1_; }
  [[nodiscard]] const Cache& l2() const noexcept { return l2_; }

 private:
  friend class Machine;

  /// Slots in the stream detector: the MIPSpro prefetch model recognizes up
  /// to this many concurrent streams per processor.
  static constexpr unsigned kStreamSlots = 8;
  /// Direct-mapped filter of recently missed lines, used to classify a miss
  /// as a *re-miss* (conflict/capacity victim fetched again) — software
  /// prefetching cannot hide those, because the prefetched line is displaced
  /// before use.
  static constexpr std::size_t kReMissTableSize = 8192;

  unsigned id_;
  Cache l1_;
  Cache l2_;
  std::uint64_t stream_slots_[kStreamSlots];       ///< last miss line per stream
  unsigned stream_replace_ = 0;                    ///< round-robin victim slot
  std::vector<std::uint64_t> recent_miss_lines_;   ///< re-miss filter
  std::uint32_t miss_chain_ = 0;  ///< consecutive bus-level misses (MLP model)
};

/// The multiprocessor.  All accesses are issued through this class so that
/// coherence (snooping, invalidation, dirty supply) is applied globally.
/// The simulation is logically sequential — cascaded execution guarantees a
/// single execution phase at a time, and helper phases are interleaved by the
/// cascade engine — so no internal locking is needed or provided.
class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] unsigned num_processors() const noexcept {
    return static_cast<unsigned>(procs_.size());
  }
  [[nodiscard]] Processor& processor(unsigned p);
  [[nodiscard]] const Processor& processor(unsigned p) const;

  /// Pushes one reference through processor `p`'s hierarchy, applying MSI
  /// coherence against all other processors, and returns where it hit and the
  /// cycles charged.  References larger than a line are split and the worst
  /// (slowest) constituent outcome is returned with summed latency.
  AccessOutcome access(unsigned p, const MemRef& ref, Phase phase);

  /// Convenience: read/write `size` bytes at `addr` on processor `p`.
  AccessOutcome read(unsigned p, std::uint64_t addr, std::uint32_t size = 4,
                     Phase phase = Phase::kExec) {
    return access(p, {addr, size, AccessType::kRead}, phase);
  }
  AccessOutcome write(unsigned p, std::uint64_t addr, std::uint32_t size = 4,
                      Phase phase = Phase::kExec) {
    return access(p, {addr, size, AccessType::kWrite}, phase);
  }

  /// Invalidates every line of every cache (cold restart).  Statistics are
  /// preserved; call reset_stats() separately if desired.
  void flush_all_caches() noexcept;

  [[nodiscard]] const BusStats& bus_stats() const noexcept { return bus_stats_; }

  /// Zeroes every cache's and the bus's statistics.
  void reset_stats() noexcept;

  /// Sum of a given level's stats across all processors, per phase.
  [[nodiscard]] CacheStats l1_stats(Phase phase) const noexcept;
  [[nodiscard]] CacheStats l2_stats(Phase phase) const noexcept;
  [[nodiscard]] CacheStats l1_stats_total() const noexcept;
  [[nodiscard]] CacheStats l2_stats_total() const noexcept;

 private:
  /// Handles a single within-line reference.
  AccessOutcome access_line(unsigned p, std::uint64_t addr, AccessType type, Phase phase);

  /// Fetches a line into processor `p`'s L2 via the bus; returns the latency
  /// and whether it came from a remote cache.  `for_write` requests exclusive
  /// (Modified) ownership.
  struct BusFetch {
    std::uint64_t latency = 0;
    bool from_remote = false;
    /// State the line installs in: Modified for writes, Exclusive for reads
    /// with no other cached copy, Shared otherwise.
    LineState install = LineState::kShared;
  };
  BusFetch bus_fetch(unsigned p, std::uint64_t line_addr, bool for_write, Phase phase);

  /// Broadcasts a Shared->Modified upgrade for the L2 line, invalidating all
  /// remote copies; returns the bus latency charged.
  std::uint64_t bus_upgrade(unsigned p, std::uint64_t l2_line, Phase phase);

  /// Installs a line into L2 (and handles the inclusion back-invalidate +
  /// writeback of the victim).
  void fill_l2(Processor& proc, std::uint64_t line_addr, LineState state, Phase phase);
  /// Installs a line into L1, propagating a dirty victim into L2.
  void fill_l1(Processor& proc, std::uint64_t line_addr, bool dirty, Phase phase);

  MachineConfig config_;
  std::vector<std::unique_ptr<Processor>> procs_;
  BusStats bus_stats_;
};

}  // namespace casc::sim
