#include "casc/sim/three_cs.hpp"

#include "casc/common/check.hpp"

namespace casc::sim {

MissClassifier::MissClassifier(const CacheConfig& config)
    : cache_(config), capacity_lines_(config.size_bytes / config.line_size) {
  CASC_CHECK(capacity_lines_ > 0, "cache must hold at least one line");
}

void MissClassifier::access(std::uint64_t addr, std::uint32_t size) {
  CASC_CHECK(size > 0, "zero-size access");
  const std::uint64_t line_size = cache_.config().line_size;
  const std::uint64_t first = addr & ~(line_size - 1);
  const std::uint64_t last = (addr + size - 1) & ~(line_size - 1);
  for (std::uint64_t line = first; line <= last; line += line_size) {
    access_line(line);
  }
}

void MissClassifier::access_line(std::uint64_t line_addr) {
  ++counts_.accesses;

  // Fully-associative shadow: check membership, then promote/insert.
  const auto fa_it = in_fa_.find(line_addr);
  const bool fa_hit = fa_it != in_fa_.end();
  if (fa_hit) {
    lru_.splice(lru_.begin(), lru_, fa_it->second);
  } else {
    lru_.push_front(line_addr);
    in_fa_[line_addr] = lru_.begin();
    if (lru_.size() > capacity_lines_) {
      in_fa_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  // Real set-associative cache.
  if (cache_.touch(line_addr).hit) {
    ++counts_.hits;
  } else {
    if (!ever_seen_.contains(line_addr)) {
      ++counts_.compulsory;
    } else if (fa_hit) {
      ++counts_.conflict;
    } else {
      ++counts_.capacity;
    }
    cache_.insert(line_addr, LineState::kShared);
  }
  ever_seen_.insert(line_addr);
}

}  // namespace casc::sim
