#include "casc/trace/trace.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "casc/common/check.hpp"

namespace casc::trace {

namespace {

constexpr char kMagic[8] = {'C', 'A', 'S', 'C', 'T', 'R', 'C', '1'};
/// Guard against absurd (likely corrupted) counts before allocating.
constexpr std::uint64_t kMaxReasonable = 1ull << 40;

/// Bytes of one packed on-disk reference record (addr + size + flags).
constexpr std::uint64_t kRefRecordBytes = 8 + 4 + 1;

/// Bytes left in the stream after the current position, or kMaxReasonable
/// when the stream is not seekable.  Used to reject corrupt headers whose
/// counts would otherwise drive multi-gigabyte allocations before the first
/// truncated read is ever noticed.
std::uint64_t remaining_bytes(std::istream& is) {
  const std::istream::pos_type here = is.tellg();
  if (here == std::istream::pos_type(-1)) return kMaxReasonable;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(here);
  if (end == std::istream::pos_type(-1) || end < here) return kMaxReasonable;
  return static_cast<std::uint64_t>(end - here);
}

template <typename T>
void put(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  CASC_CHECK(is.good(), "trace stream truncated");
  return value;
}

/// Packed on-disk reference record.
struct RefRecord {
  std::uint64_t addr = 0;
  std::uint32_t size = 0;
  std::uint8_t flags = 0;  // bit0 write, bit1 read-only operand, bit2 index load
};

RefRecord pack(const loopir::Ref& ref) {
  RefRecord rec;
  rec.addr = ref.mem.addr;
  rec.size = ref.mem.size;
  rec.flags = static_cast<std::uint8_t>(
      (ref.mem.type == sim::AccessType::kWrite ? 1u : 0u) |
      (ref.read_only_operand ? 2u : 0u) | (ref.is_index_load ? 4u : 0u));
  return rec;
}

loopir::Ref unpack(const RefRecord& rec) {
  loopir::Ref ref;
  ref.mem.addr = rec.addr;
  ref.mem.size = rec.size;
  ref.mem.type = (rec.flags & 1u) ? sim::AccessType::kWrite : sim::AccessType::kRead;
  ref.read_only_operand = (rec.flags & 2u) != 0;
  ref.is_index_load = (rec.flags & 4u) != 0;
  CASC_CHECK(ref.mem.size > 0, "trace contains a zero-size reference");
  return ref;
}

}  // namespace

Trace Trace::capture(const core::Workload& workload, std::string name) {
  Trace trace;
  trace.meta_.name = std::move(name);
  trace.meta_.compute_cycles = workload.compute_cycles();
  trace.meta_.restructured_compute_cycles = workload.restructured_compute_cycles();
  trace.meta_.bytes_per_iteration = workload.bytes_per_iteration();
  trace.meta_.buffer_bytes_per_iteration = workload.buffer_bytes_per_iteration();

  const std::uint64_t iters = workload.num_iterations();
  trace.iter_offsets_.reserve(iters + 1);
  trace.iter_offsets_.push_back(0);
  std::vector<loopir::Ref> scratch;
  for (std::uint64_t it = 0; it < iters; ++it) {
    scratch.clear();
    workload.refs_for_iteration(it, scratch);
    trace.refs_.insert(trace.refs_.end(), scratch.begin(), scratch.end());
    trace.iter_offsets_.push_back(trace.refs_.size());
  }
  trace.compute_ranges();
  return trace;
}

Trace Trace::capture(const loopir::LoopNest& nest) {
  return capture(core::LoopWorkload(nest), nest.name());
}

void Trace::compute_ranges() {
  // Coalesce the touched 4 KiB pages into contiguous ranges — compact enough
  // to store, precise enough for start-state warming.
  constexpr std::uint64_t kPage = 4096;
  std::vector<std::uint64_t> pages;
  pages.reserve(refs_.size() / 8 + 1);
  for (const loopir::Ref& ref : refs_) {
    pages.push_back(ref.mem.addr / kPage);
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  ranges_.clear();
  for (std::size_t i = 0; i < pages.size();) {
    std::size_t j = i + 1;
    while (j < pages.size() && pages[j] == pages[j - 1] + 1) ++j;
    ranges_.push_back({pages[i] * kPage, (j - i) * kPage});
    i = j;
  }
}

void Trace::write(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(os, static_cast<std::uint32_t>(meta_.name.size()));
  os.write(meta_.name.data(), static_cast<std::streamsize>(meta_.name.size()));
  put(os, meta_.compute_cycles);
  put(os, meta_.restructured_compute_cycles);
  put(os, meta_.bytes_per_iteration);
  put(os, meta_.buffer_bytes_per_iteration);
  put<std::uint64_t>(os, num_iterations());
  put<std::uint64_t>(os, refs_.size());
  for (std::uint64_t offset : iter_offsets_) put(os, offset);
  for (const loopir::Ref& ref : refs_) {
    const RefRecord rec = pack(ref);
    put(os, rec.addr);
    put(os, rec.size);
    put(os, rec.flags);
  }
  put<std::uint32_t>(os, static_cast<std::uint32_t>(ranges_.size()));
  for (const core::AddressRange& range : ranges_) {
    put(os, range.base);
    put(os, range.bytes);
  }
  CASC_CHECK(os.good(), "failed to write trace stream");
}

Trace Trace::read(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  CASC_CHECK(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
             "not a cascaded-execution trace (bad magic)");
  Trace trace;
  const auto name_len = get<std::uint32_t>(is);
  CASC_CHECK(name_len < 4096, "trace name implausibly long");
  trace.meta_.name.resize(name_len);
  is.read(trace.meta_.name.data(), name_len);
  CASC_CHECK(is.good(), "trace stream truncated in name");
  trace.meta_.compute_cycles = get<std::uint32_t>(is);
  trace.meta_.restructured_compute_cycles = get<std::uint32_t>(is);
  trace.meta_.bytes_per_iteration = get<std::uint64_t>(is);
  trace.meta_.buffer_bytes_per_iteration = get<std::uint64_t>(is);
  const auto iters = get<std::uint64_t>(is);
  const auto refs = get<std::uint64_t>(is);
  CASC_CHECK(iters < kMaxReasonable && refs < kMaxReasonable,
             "trace header counts are implausible (corrupt file?)");
  const std::uint64_t remaining = remaining_bytes(is);
  CASC_CHECK(iters <= remaining / sizeof(std::uint64_t) &&
                 refs <= remaining / kRefRecordBytes,
             "trace header counts exceed the stream size (corrupt file?)");
  trace.iter_offsets_.resize(iters + 1);
  for (auto& offset : trace.iter_offsets_) offset = get<std::uint64_t>(is);
  CASC_CHECK(trace.iter_offsets_.front() == 0 && trace.iter_offsets_.back() == refs,
             "trace iteration index is inconsistent");
  for (std::size_t i = 1; i < trace.iter_offsets_.size(); ++i) {
    CASC_CHECK(trace.iter_offsets_[i] >= trace.iter_offsets_[i - 1],
               "trace iteration offsets must be monotone");
  }
  trace.refs_.reserve(refs);
  for (std::uint64_t r = 0; r < refs; ++r) {
    RefRecord rec;
    rec.addr = get<std::uint64_t>(is);
    rec.size = get<std::uint32_t>(is);
    rec.flags = get<std::uint8_t>(is);
    trace.refs_.push_back(unpack(rec));
  }
  const auto num_ranges = get<std::uint32_t>(is);
  trace.ranges_.reserve(num_ranges);
  for (std::uint32_t r = 0; r < num_ranges; ++r) {
    core::AddressRange range;
    range.base = get<std::uint64_t>(is);
    range.bytes = get<std::uint64_t>(is);
    trace.ranges_.push_back(range);
  }
  return trace;
}

void Trace::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  CASC_CHECK(os.good(), "cannot open '" + path + "' for writing");
  write(os);
}

Trace Trace::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CASC_CHECK(is.good(), "cannot open trace '" + path + "'");
  return read(is);
}

void Trace::refs_for_iteration(std::uint64_t it, std::vector<loopir::Ref>& out) const {
  CASC_CHECK(it < num_iterations(), "trace iteration out of range");
  const std::uint64_t begin = iter_offsets_[it];
  const std::uint64_t end = iter_offsets_[it + 1];
  out.insert(out.end(), refs_.begin() + static_cast<std::ptrdiff_t>(begin),
             refs_.begin() + static_cast<std::ptrdiff_t>(end));
}

}  // namespace casc::trace
