// Memory-reference traces: capture the classified dynamic reference stream
// of any workload, persist it in a compact binary format, and replay it
// through the cascade engine via the Workload interface.  This decouples the
// evaluation pipeline from the loop IR — a user can study cascaded execution
// on reference streams captured from real applications (or other simulators)
// without expressing them as LoopNests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "casc/core/workload.hpp"
#include "casc/loopir/loop_nest.hpp"

namespace casc::trace {

/// Workload-level metadata carried alongside the reference stream.
struct TraceMeta {
  std::string name;
  std::uint32_t compute_cycles = 1;
  std::uint32_t restructured_compute_cycles = 1;
  std::uint64_t bytes_per_iteration = 1;
  std::uint64_t buffer_bytes_per_iteration = 0;
};

/// An in-memory trace: per-iteration groups of classified references.
class Trace {
 public:
  /// Records every iteration of `workload` (metadata copied from it).
  static Trace capture(const core::Workload& workload, std::string name);
  /// Convenience: capture a finalized loop nest.
  static Trace capture(const loopir::LoopNest& nest);

  /// Serializes to the binary format (magic "CASCTRC1", little-endian).
  void write(std::ostream& os) const;
  /// Deserializes; throws CheckFailure on malformed input.
  static Trace read(std::istream& is);

  void save(const std::string& path) const;
  static Trace load(const std::string& path);

  [[nodiscard]] const TraceMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] std::uint64_t num_iterations() const noexcept {
    return iter_offsets_.empty() ? 0 : iter_offsets_.size() - 1;
  }
  [[nodiscard]] std::uint64_t num_refs() const noexcept { return refs_.size(); }

  /// References of iteration `it` (appended to `out`).
  void refs_for_iteration(std::uint64_t it, std::vector<loopir::Ref>& out) const;

  /// Coalesced data regions the trace touches.
  [[nodiscard]] const std::vector<core::AddressRange>& ranges() const noexcept {
    return ranges_;
  }

 private:
  void compute_ranges();

  TraceMeta meta_;
  std::vector<loopir::Ref> refs_;
  std::vector<std::uint64_t> iter_offsets_;  // size = num_iterations + 1
  std::vector<core::AddressRange> ranges_;
};

/// Workload view over a Trace (non-owning).
class TraceWorkload final : public core::Workload {
 public:
  explicit TraceWorkload(const Trace& trace) : trace_(&trace) {}

  [[nodiscard]] std::uint64_t num_iterations() const override {
    return trace_->num_iterations();
  }
  [[nodiscard]] std::uint32_t compute_cycles() const override {
    return trace_->meta().compute_cycles;
  }
  [[nodiscard]] std::uint32_t restructured_compute_cycles() const override {
    return trace_->meta().restructured_compute_cycles;
  }
  [[nodiscard]] std::uint64_t bytes_per_iteration() const override {
    return trace_->meta().bytes_per_iteration;
  }
  [[nodiscard]] std::uint64_t buffer_bytes_per_iteration() const override {
    return trace_->meta().buffer_bytes_per_iteration;
  }
  void refs_for_iteration(std::uint64_t it,
                          std::vector<loopir::Ref>& out) const override {
    trace_->refs_for_iteration(it, out);
  }
  [[nodiscard]] std::vector<core::AddressRange> data_ranges() const override {
    return trace_->ranges();
  }

 private:
  const Trace* trace_;
};

}  // namespace casc::trace
