#include "casc/cli/args.hpp"

#include <charconv>
#include <sstream>

#include "casc/common/check.hpp"

namespace casc::cli {

namespace {

std::uint64_t parse_u64_or_throw(const std::string& token, const std::string& what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  CASC_CHECK(ec == std::errc{} && ptr == token.data() + token.size(),
             what + ": expected an integer, got '" + token + "'");
  return value;
}

}  // namespace

std::uint64_t parse_bytes(const std::string& token) {
  CASC_CHECK(!token.empty(), "empty size");
  std::uint64_t multiplier = 1;
  std::string digits = token;
  switch (token.back()) {
    case 'k': case 'K': multiplier = 1024ull; digits.pop_back(); break;
    case 'm': case 'M': multiplier = 1024ull * 1024; digits.pop_back(); break;
    case 'g': case 'G': multiplier = 1024ull * 1024 * 1024; digits.pop_back(); break;
    default: break;
  }
  return parse_u64_or_throw(digits, "size '" + token + "'") * multiplier;
}

Args Args::parse(const std::vector<std::string>& argv,
                 const std::vector<OptionSpec>& specs) {
  Args args;
  args.specs_ = specs;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    CASC_CHECK(arg.rfind("--", 0) == 0, "unexpected positional argument '" + arg + "'");
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const OptionSpec* spec = nullptr;
    for (const OptionSpec& s : specs) {
      if (s.name == name) {
        spec = &s;
        break;
      }
    }
    CASC_CHECK(spec != nullptr, "unknown option '--" + name + "'");
    if (spec->value_hint.empty()) {
      CASC_CHECK(!inline_value, "flag '--" + name + "' does not take a value");
      args.values_[name] = "true";
    } else if (inline_value) {
      args.values_[name] = *inline_value;
    } else {
      CASC_CHECK(i + 1 < argv.size(), "option '--" + name + "' needs a value");
      args.values_[name] = argv[++i];
    }
  }
  return args;
}

const OptionSpec& Args::spec_for(const std::string& name) const {
  for (const OptionSpec& s : specs_) {
    if (s.name == name) return s;
  }
  CASC_CHECK(false, "query for undeclared option '--" + name + "'");
  // Unreachable; silences the compiler.
  static const OptionSpec dummy{};
  return dummy;
}

bool Args::has(const std::string& name) const {
  spec_for(name);  // validate the query
  return values_.contains(name);
}

std::string Args::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  return spec_for(name).default_value;
}

std::uint64_t Args::get_u64(const std::string& name) const {
  return parse_u64_or_throw(get(name), "option '--" + name + "'");
}

double Args::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    CASC_CHECK(pos == v.size(), "trailing junk");
    return d;
  } catch (const common::CheckFailure&) {
    throw;
  } catch (...) {
    CASC_CHECK(false, "option '--" + name + "': expected a number, got '" + v + "'");
  }
  return 0;  // unreachable
}

std::uint64_t Args::get_bytes(const std::string& name) const {
  return parse_bytes(get(name));
}

std::string Args::help(const std::string& program, const std::string& description,
                       const std::vector<OptionSpec>& specs) {
  std::ostringstream os;
  os << program << " — " << description << "\n\noptions:\n";
  std::size_t width = 0;
  std::vector<std::string> lhs;
  for (const OptionSpec& s : specs) {
    std::string left = "  --" + s.name;
    if (!s.value_hint.empty()) left += "=<" + s.value_hint + ">";
    width = std::max(width, left.size());
    lhs.push_back(std::move(left));
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    os << lhs[i] << std::string(width - lhs[i].size() + 2, ' ') << specs[i].help;
    if (!specs[i].default_value.empty()) {
      os << " (default: " << specs[i].default_value << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace casc::cli
