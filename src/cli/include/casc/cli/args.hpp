// A small, dependency-free command-line parser for the cascsim tool:
// --key=value and --key value options, boolean --flags, size suffixes
// (K/M/G), and generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace casc::cli {

/// Declares one accepted option.
struct OptionSpec {
  std::string name;          ///< without the leading "--"
  std::string value_hint;    ///< empty => boolean flag
  std::string help;
  std::string default_value; ///< shown in help; used when absent
};

/// Parsed command line.
class Args {
 public:
  /// Parses `argv` (excluding the program name) against `specs`.  Throws
  /// CheckFailure on unknown options, missing values, or stray positionals.
  static Args parse(const std::vector<std::string>& argv,
                    const std::vector<OptionSpec>& specs);

  /// True if the option was given (flags) or given a value (options).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of an option, or its declared default.
  [[nodiscard]] std::string get(const std::string& name) const;

  /// Integer value; accepts plain numbers only.
  [[nodiscard]] std::uint64_t get_u64(const std::string& name) const;

  /// Double value.
  [[nodiscard]] double get_double(const std::string& name) const;

  /// Byte size with optional K/M/G suffix (powers of 1024): "64K" -> 65536.
  [[nodiscard]] std::uint64_t get_bytes(const std::string& name) const;

  /// Renders a help screen for the spec list.
  static std::string help(const std::string& program, const std::string& description,
                          const std::vector<OptionSpec>& specs);

 private:
  const OptionSpec& spec_for(const std::string& name) const;

  std::vector<OptionSpec> specs_;
  std::map<std::string, std::string> values_;
};

/// Parses a standalone byte-size token ("64K", "2M", "512").  Throws on junk.
std::uint64_t parse_bytes(const std::string& token);

}  // namespace casc::cli
