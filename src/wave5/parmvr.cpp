#include "casc/wave5/parmvr.hpp"

#include <algorithm>
#include <array>

#include "casc/common/check.hpp"

namespace casc::wave5 {

using loopir::AccessSpec;
using loopir::ArrayId;
using loopir::ArraySpec;
using loopir::IndexPattern;
using loopir::LayoutPolicy;
using loopir::LoopNest;

namespace {

const std::array<ParmvrLoopInfo, kNumParmvrLoops> kLoopInfo = {{
    {1, "resident_sweep", "repeated sweep over a 256 KB working set; cache-resident"},
    {2, "copy3", "three-stream add X(i)=A(i)+B(i); 768 KB; conflicting bases"},
    {3, "gather_small", "permuted gather X(i)=A(IJ(i)); ~1.1 MB"},
    {4, "stencil5", "five-point stencil over A with B forcing term; 2.5 MB"},
    {5, "field_gather", "weighted cell-field gather X(i)+=E(CELL(i))*W(i)+D(i); ~6 MB"},
    {6, "saxpy_large", "large saxpy Y(i)+=a*X(i); 6 MB; two streams"},
    {7, "scatter", "permuted scatter X(IJ(i))=A(i)*B(i)+C(i); ~6 MB"},
    {8, "four_stream", "X(i)=A(i)+B(i)*C(i); 8 MB; four conflicting streams"},
    {9, "quad_stream_large", "four natural streams at 12 MB; purely capacity-bound"},
    {10, "random_update", "X(R(i))+=A(i) with random R; 8 MB; no locality in X"},
    {11, "reduction_gather", "s+=A(IJ(i))*B(i); ~2.5 MB; all operands read-only"},
    {12, "strided_gather", "X(i)=A(2i); 1.5 MB; stride-2 reads"},
    {13, "compute_bound", "X(i)=f(A(i)) with ~40 cycles of arithmetic; 512 KB"},
    {14, "block_gather", "X(i)=A(BJ(i))+C(i)*D(i), shuffled 64-element blocks; ~16 MB"},
    {15, "widest", "X(i)+=A(i)+B(IJ(i)); ~17 MB; the enlarged problem's largest loop"},
}};

/// Scales an element count down, keeping it large enough to exercise caches.
std::uint64_t scaled(std::uint64_t elems, unsigned scale) {
  return std::max<std::uint64_t>(1024, elems / scale);
}

}  // namespace

const ParmvrLoopInfo& parmvr_loop_info(int id) {
  CASC_CHECK(id >= 1 && id <= kNumParmvrLoops, "PARMVR loop id must be in 1..15");
  return kLoopInfo[static_cast<std::size_t>(id - 1)];
}

LoopNest make_parmvr_loop(int id, unsigned scale) {
  CASC_CHECK(id >= 1 && id <= kNumParmvrLoops, "PARMVR loop id must be in 1..15");
  CASC_CHECK(scale >= 1, "scale must be at least 1");
  LoopNest nest("parmvr_" + std::to_string(id) + "_" + parmvr_loop_info(id).name);

  switch (id) {
    case 1: {
      // X(i mod m) = f(A(i mod m)) — a 256 KB working set swept repeatedly,
      // so after the first pass everything is cache-resident.  There is
      // nothing for a helper to fix; cascading only pays transfer overhead
      // and per-processor re-warming (the paper's "maximum slowdown of 0.9"
      // loop).
      const std::uint64_t m = scaled(16 * 1024, scale);
      const std::uint64_t n = 8 * m;  // eight sweeps
      const ArrayId x = nest.add_array({"X", 8, m, false});
      const ArrayId a = nest.add_array({"A", 8, m, true});
      nest.add_access({a, false, 1, 0, {}});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(25);
      nest.finalize(LayoutPolicy::kStaggered);
      break;
    }
    case 2: {
      // X(i) = A(i) + B(i) — three streams with conflicting bases.
      const std::uint64_t n = scaled(32 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId a = nest.add_array({"A", 8, n, true});
      const ArrayId b = nest.add_array({"B", 8, n, true});
      nest.add_access({a, false, 1, 0, {}});
      nest.add_access({b, false, 1, 0, {}});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(65);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 3: {
      // X(i) = A(IJ(i)) — permuted gather.
      const std::uint64_t n = scaled(32 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId a = nest.add_array({"A", 8, n, true});
      const ArrayId ij = nest.add_index_array("IJ", n, IndexPattern::kRandomPerm, 3);
      nest.add_access({a, false, 1, 0, ij});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(75, 60);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 4: {
      // X(i) = c*(A(i-1)+A(i)+A(i+1)) + B(i) — stencil.
      const std::uint64_t n = scaled(80 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId a = nest.add_array({"A", 8, n, true});
      const ArrayId b = nest.add_array({"B", 8, n, true});
      const ArrayId c = nest.add_array({"C", 8, n, true});
      nest.add_access({a, false, 1, -1, {}});
      nest.add_access({a, false, 1, 0, {}});
      nest.add_access({a, false, 1, 1, {}});
      nest.add_access({b, false, 1, 0, {}});
      nest.add_access({c, false, 1, 0, {}});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(90);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 5: {
      // X(i) += E(CELL(i)) * W(i) — particle reads its cell's field value,
      // weighted.  CELL, W, and X march in lockstep from conflicting bases:
      // three streams thrash a 2-way L2 while a 4-way one holds them.
      const std::uint64_t n = scaled(128 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId e = nest.add_array({"E", 8, n, true});
      const ArrayId w = nest.add_array({"W", 8, n, true});
      const ArrayId d = nest.add_array({"D", 8, n, true});
      const ArrayId cell = nest.add_index_array("CELL", n, IndexPattern::kRandomPerm, 5);
      nest.add_access({e, false, 1, 0, cell});
      nest.add_access({w, false, 1, 0, {}});
      nest.add_access({d, false, 1, 0, {}});
      nest.add_access({x, false, 1, 0, {}});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(110, 90);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 6: {
      // Y(i) += a * X(i) — two large streams.
      const std::uint64_t n = scaled(384 * 1024, scale);
      const ArrayId y = nest.add_array({"Y", 8, n, false});
      const ArrayId x = nest.add_array({"X", 8, n, true});
      nest.add_access({x, false, 1, 0, {}});
      nest.add_access({y, false, 1, 0, {}});
      nest.add_access({y, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(60);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 7: {
      // X(IJ(i)) = A(i) — permuted scatter; the resolved index is staged by
      // the restructuring helper, the store stays in the execution phase.
      const std::uint64_t n = scaled(128 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId a = nest.add_array({"A", 8, n, true});
      const ArrayId b = nest.add_array({"B", 8, n, true});
      const ArrayId c = nest.add_array({"C", 8, n, true});
      const ArrayId ij = nest.add_index_array("IJ", n, IndexPattern::kRandomPerm, 7);
      nest.add_access({a, false, 1, 0, {}});
      nest.add_access({b, false, 1, 0, {}});
      nest.add_access({c, false, 1, 0, {}});
      nest.add_access({x, true, 1, 0, ij});
      nest.set_trip(n);
      nest.set_compute_cycles(95, 75);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 8: {
      // X(i) = A(i) + B(i)*C(i) — four conflicting streams: exactly fills the
      // Pentium Pro's 4-way L2 sets (capacity misses only) while thrashing
      // the R10000's 2-way L2 (conflict misses on every reference).
      const std::uint64_t n = scaled(256 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId a = nest.add_array({"A", 8, n, true});
      const ArrayId b = nest.add_array({"B", 8, n, true});
      const ArrayId c = nest.add_array({"C", 8, n, true});
      nest.add_access({a, false, 1, 0, {}});
      nest.add_access({b, false, 1, 0, {}});
      nest.add_access({c, false, 1, 0, {}});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(75);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 9: {
      // Four naturally laid-out streams at the 12 MB size: a pure
      // capacity-bound loop.  The compiler's prefetching already hides much
      // of its latency on the R10000, so cascading gains modestly there; the
      // Pentium Pro (no compiler prefetch) gains more.
      const std::uint64_t n = scaled(384 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const char* names[] = {"A", "B", "C"};
      for (const char* name : names) {
        const ArrayId a = nest.add_array({name, 8, n, true});
        nest.add_access({a, false, 1, 0, {}});
      }
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(70);
      nest.finalize(LayoutPolicy::kStaggered);
      break;
    }
    case 10: {
      // X(R(i)) += A(i) — random read-modify-write; helpers can prefetch the
      // X lines but cannot restructure them (X is read-write).
      const std::uint64_t nx = scaled(512 * 1024, scale);
      const std::uint64_t n = scaled(256 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, nx, false});
      const ArrayId a = nest.add_array({"A", 8, n, true});
      const ArrayId r = nest.add_index_array("R", n, IndexPattern::kRandom, 10);
      nest.add_access({a, false, 1, 0, {}});
      nest.add_access({x, false, 1, 0, r});
      nest.add_access({x, true, 1, 0, r});
      nest.set_trip(n);
      nest.set_compute_cycles(80, 70);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 11: {
      // s += A(IJ(i)) * B(i) — a reduction: every operand is read-only, so
      // restructuring turns the whole execution phase into one buffer stream.
      const std::uint64_t n = scaled(128 * 1024, scale);
      const ArrayId a = nest.add_array({"A", 8, n, true});
      const ArrayId b = nest.add_array({"B", 8, n, true});
      const ArrayId ij = nest.add_index_array("IJ", n, IndexPattern::kRandomPerm, 11);
      nest.add_access({a, false, 1, 0, ij});
      nest.add_access({b, false, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(65, 45);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 12: {
      // X(i) = A(2i) — stride-2 gather: half of each A line is wasted, which
      // sequential-buffer packing recovers.
      const std::uint64_t n = scaled(64 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId a = nest.add_array({"A", 8, 2 * n, true});
      nest.add_access({a, false, 2, 0, {}});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(55);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 13: {
      // X(i) = f(A(i)) with heavy arithmetic — compute-bound; memory-state
      // optimization has nothing to hide, so cascading only pays transfers.
      const std::uint64_t n = scaled(32 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId a = nest.add_array({"A", 8, n, true});
      nest.add_access({a, false, 1, 0, {}});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(150, 150);
      nest.finalize(LayoutPolicy::kStaggered);
      break;
    }
    case 14: {
      // X(i) = A(BJ(i)) + C(i)*D(i) — gather through shuffled 64-element
      // blocks (spatial locality within a block, none across) plus three
      // lockstep streams from conflicting bases.
      const std::uint64_t n = scaled(320 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId a = nest.add_array({"A", 8, n, true});
      const ArrayId c = nest.add_array({"C", 8, n, true});
      const ArrayId d = nest.add_array({"D", 8, n, true});
      const ArrayId bj =
          nest.add_index_array("BJ", n, IndexPattern::kBlockShuffle, 14, 64);
      nest.add_access({a, false, 1, 0, bj});
      nest.add_access({c, false, 1, 0, {}});
      nest.add_access({d, false, 1, 0, {}});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(95, 75);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    case 15: {
      // X(i) += A(i) + B(IJ(i)) — the enlarged problem's largest loop
      // (~17 MB total footprint).
      const std::uint64_t n = scaled(512 * 1024, scale);
      const std::uint64_t nb = scaled(1024 * 1024, scale);
      const ArrayId x = nest.add_array({"X", 8, n, false});
      const ArrayId a = nest.add_array({"A", 8, n, true});
      const ArrayId b = nest.add_array({"B", 8, nb, true});
      const ArrayId ij = nest.add_index_array("IJ", n, IndexPattern::kRandomPerm, 15);
      nest.add_access({a, false, 1, 0, {}});
      nest.add_access({b, false, 1, 0, ij});
      nest.add_access({x, false, 1, 0, {}});
      nest.add_access({x, true, 1, 0, {}});
      nest.set_trip(n);
      nest.set_compute_cycles(110, 90);
      nest.finalize(LayoutPolicy::kConflicting);
      break;
    }
    default:
      CASC_CHECK(false, "unreachable");
  }
  return nest;
}

std::vector<LoopNest> make_parmvr(unsigned scale) {
  std::vector<LoopNest> loops;
  loops.reserve(kNumParmvrLoops);
  for (int id = 1; id <= kNumParmvrLoops; ++id) {
    loops.push_back(make_parmvr_loop(id, scale));
  }
  return loops;
}

loopir::PipelineSpec make_parmvr_pipeline(unsigned scale) {
  CASC_CHECK(scale >= 1, "scale must be at least 1");
  const std::uint64_t n = scaled(128 * 1024, scale);

  loopir::PipelineSpec p;
  p.name = "parmvr_call12";
  p.layout = LayoutPolicy::kConflicting;

  auto data = [&](const char* name, bool read_only) {
    loopir::LoopSpec::ArrayDecl d;
    d.name = name;
    d.elem_size = 8;
    d.num_elems = n;
    d.read_only = read_only;
    p.arrays.push_back(d);
  };
  auto index = [&](const char* name, std::uint64_t seed) {
    loopir::LoopSpec::ArrayDecl d;
    d.name = name;
    d.elem_size = 4;
    d.num_elems = n;
    d.read_only = true;
    d.pattern = IndexPattern::kRandomPerm;
    d.seed = seed;
    p.arrays.push_back(d);
  };
  // Source-term and weight streams (never written in one call)...
  data("Q", true);
  data("W", true);
  data("EF", true);
  data("B0", true);
  // ...the particle->cell map and the sorted-order permutation...
  index("CELL", 5);
  index("IJ", 3);
  // ...and the per-particle state the chain advances.
  for (const char* name : {"VX", "VY", "VZ", "PX", "PY", "PZ", "RHO", "CUR", "SC"}) {
    data(name, false);
  }

  struct Access {
    const char* array;
    bool write;
    std::int64_t offset = 0;
    const char* via = nullptr;
  };
  auto stage = [&](const char* name, std::uint32_t cycles,
                   std::optional<std::uint32_t> restructured,
                   std::initializer_list<Access> accesses) {
    loopir::PipelineSpec::Stage s;
    s.name = name;
    s.trip = n;
    s.compute_cycles = cycles;
    s.restructured_compute = restructured;
    for (const Access& a : accesses) {
      loopir::LoopSpec::AccessDecl acc;
      acc.array = a.array;
      acc.is_write = a.write;
      acc.offset = a.offset;
      if (a.via != nullptr) acc.index_via = a.via;
      s.accesses.push_back(std::move(acc));
    }
    p.stages.push_back(std::move(s));
  };

  constexpr bool kR = false, kW = true;
  // The three field-gather components (and the two sorted gathers, and the
  // two tail gathers) read IDENTICAL staged streams and differ only in the
  // write target — the engineered survival pairs the planner must prove.
  stage("charge_sweep", 25, {}, {{"Q", kR}, {"SC", kW}});
  stage("weight_blend", 65, {}, {{"Q", kR}, {"W", kR}, {"SC", kW}});
  stage("field_gather_x", 75, 60, {{"EF", kR, 0, "CELL"}, {"W", kR}, {"VX", kW}});
  stage("field_gather_y", 75, 60, {{"EF", kR, 0, "CELL"}, {"W", kR}, {"VY", kW}});
  stage("field_gather_z", 75, 60, {{"EF", kR, 0, "CELL"}, {"W", kR}, {"VZ", kW}});
  stage("push_x", 60, {}, {{"VX", kR}, {"B0", kR}, {"PX", kW}});
  stage("push_y", 60, {}, {{"VY", kR}, {"B0", kR}, {"PY", kW}});
  stage("push_z", 60, {}, {{"VZ", kR}, {"B0", kR}, {"PZ", kW}});
  stage("sorted_gather_q", 95, 75, {{"Q", kR, 0, "IJ"}, {"W", kR}, {"SC", kW}});
  stage("sorted_gather_cur", 95, 75, {{"Q", kR, 0, "IJ"}, {"W", kR}, {"CUR", kW}});
  stage("smooth_rho", 90, {},
        {{"SC", kR, -1}, {"SC", kR, 0}, {"SC", kR, 1}, {"B0", kR}, {"RHO", kW}});
  stage("current_blend", 70, {}, {{"CUR", kR}, {"B0", kR}, {"CUR", kW}});
  stage("tail_gather_a", 110, 90, {{"EF", kR, 0, "CELL"}, {"Q", kR}, {"PX", kW}});
  stage("tail_gather_b", 110, 90, {{"EF", kR, 0, "CELL"}, {"Q", kR}, {"PY", kW}});
  stage("deposit_sweep", 70, {},
        {{"RHO", kR}, {"CUR", kR}, {"SC", kR}, {"SC", kW}});
  return p;
}

}  // namespace casc::wave5
