// A parameterized model of PARMVR, the subroutine that dominates wave5
// (Spec95fp): ~50% of sequential execution time, called ~5000 times, 15 loops
// that resist parallelization (paper §3.1).  The original Fortran is not
// redistributable and its reference data set is too small for modern caches;
// the paper's authors enlarged it so each loop touches 256 KB – 17 MB.  We
// model each of the 15 loops as a LoopNest with a realistic particle-in-cell
// access mix — streaming updates, indirect gathers/scatters through particle
// index arrays, stencils, reductions — at the enlarged sizes.  What matters
// for reproducing the paper is the *memory reference behaviour* (footprints,
// direct/indirect mix, read-only vs read-write operands, conflict mapping),
// not the physics.
#pragma once

#include <string>
#include <vector>

#include "casc/loopir/loop_nest.hpp"
#include "casc/loopir/pipeline_spec.hpp"

namespace casc::wave5 {

inline constexpr int kNumParmvrLoops = 15;

/// Static description of one modeled loop.
struct ParmvrLoopInfo {
  int id = 0;                ///< 1-based, matching the paper's loop numbering
  std::string name;
  std::string description;   ///< access-pattern summary
};

/// Metadata for loop `id` (1..15).
const ParmvrLoopInfo& parmvr_loop_info(int id);

/// Builds loop `id` (1..15).  `scale` divides every array extent (and trip
/// count) — scale 1 is the paper's enlarged problem; larger scales give
/// fast-running miniatures for tests.
loopir::LoopNest make_parmvr_loop(int id, unsigned scale = 1);

/// All 15 loops in order.
std::vector<loopir::LoopNest> make_parmvr(unsigned scale = 1);

/// One PARMVR invocation ("call 12" of the ~5000) as a loop CHAIN: the 15
/// phases of a particle push — charge sweep, per-component field gathers,
/// velocity/position pushes, sorted gathers, smoothing, deposit — over ONE
/// shared particle-arrays namespace, so loop k's writes are loop k+1's
/// operand values.  The gather phases are the point: adjacent components
/// read the IDENTICAL gathered field stream (same index array, same
/// operands, different write target), which the cross-loop survival planner
/// proves reusable — the first component gathers, the siblings replay its
/// staged stream.  This is the flagship pipeline bench subject
/// (bench_rt_pipeline: one pipeline vs 15 independent cascades).
loopir::PipelineSpec make_parmvr_pipeline(unsigned scale = 1);

}  // namespace casc::wave5
