#include "casc/common/check.hpp"

#include <sstream>

namespace casc::common {

void check_failed(const char* expr, const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << "CASC_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace casc::common
