#include "casc/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "casc/common/check.hpp"

namespace casc::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  CASC_CHECK(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    CASC_CHECK(v > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace casc::common
