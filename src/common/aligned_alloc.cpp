#include "casc/common/aligned_alloc.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace casc::common {

namespace {

std::atomic<std::uint64_t> g_thp_failures{0};
std::atomic<bool> g_thp_note_emitted{false};

}  // namespace

bool advise_huge_pages(void* p, std::size_t bytes) noexcept {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (::madvise(p, bytes, MADV_HUGEPAGE) == 0) return true;
  const int err = errno;
  g_thp_failures.fetch_add(1, std::memory_order_relaxed);
  // One telemetry note per process, not one per buffer: the condition is a
  // host configuration, so repeating it is noise.
  if (!g_thp_note_emitted.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "casc: note: madvise(MADV_HUGEPAGE) failed (%s); large "
                 "staging buffers fall back to 4 KB pages — see casc-setup\n",
                 std::strerror(err));
  }
  return false;
#else
  (void)p;
  (void)bytes;
  return true;  // nothing to advise: not a degradation
#endif
}

std::uint64_t thp_advise_failures() noexcept {
  return g_thp_failures.load(std::memory_order_relaxed);
}

}  // namespace casc::common
