#include "casc/common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define CASC_SIMD_X86 1
#include <immintrin.h>
#else
#define CASC_SIMD_X86 0
#endif

namespace casc::common::simd {

namespace {

// ---- scalar reference tier -------------------------------------------------
// The semantic ground truth: the vector tiers below must match these
// bit for bit (asserted by simd_kernel_test's randomized property tests).

void gather_offsets_u64_scalar(const std::byte* base, const std::uint64_t* offsets,
                               std::size_t n, std::uint64_t* out) noexcept {
  for (std::size_t k = 0; k < n; ++k) {
    std::memcpy(out + k, base + offsets[k], 8);
  }
}

void gather_index_f64_scalar(const double* base, const std::uint32_t* idx,
                             std::size_t n, double* out) noexcept {
  for (std::size_t k = 0; k < n; ++k) out[k] = base[idx[k]];
}

void gather_index_u64_scalar(const std::uint64_t* base, const std::uint32_t* idx,
                             std::size_t n, std::uint64_t* out) noexcept {
  for (std::size_t k = 0; k < n; ++k) out[k] = base[idx[k]];
}

#if CASC_SIMD_X86

// ---- AVX2 tier (4 x 64-bit lanes) ------------------------------------------

__attribute__((target("avx2"))) void gather_offsets_u64_avx2(
    const std::byte* base, const std::uint64_t* offsets, std::size_t n,
    std::uint64_t* out) noexcept {
  std::size_t k = 0;
  const auto* b = reinterpret_cast<const long long*>(base);  // NOLINT(google-runtime-int)
  for (; k + 4 <= n; k += 4) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offsets + k));
    const __m256i v = _mm256_i64gather_epi64(b, vidx, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), v);
  }
  gather_offsets_u64_scalar(base, offsets + k, n - k, out + k);
}

__attribute__((target("avx2"))) void gather_index_f64_avx2(
    const double* base, const std::uint32_t* idx, std::size_t n,
    double* out) noexcept {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
    const __m256d v = _mm256_i32gather_pd(base, vidx, 8);
    _mm256_storeu_pd(out + k, v);
  }
  gather_index_f64_scalar(base, idx + k, n - k, out + k);
}

__attribute__((target("avx2"))) void gather_index_u64_avx2(
    const std::uint64_t* base, const std::uint32_t* idx, std::size_t n,
    std::uint64_t* out) noexcept {
  std::size_t k = 0;
  const auto* b = reinterpret_cast<const long long*>(base);  // NOLINT(google-runtime-int)
  for (; k + 4 <= n; k += 4) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
    const __m256i v = _mm256_i32gather_epi64(b, vidx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), v);
  }
  gather_index_u64_scalar(base, idx + k, n - k, out + k);
}

__attribute__((target("avx2"))) void stream_copy_avx2(void* dst, const void* src,
                                                      std::size_t bytes) noexcept {
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  std::size_t k = 0;
  for (; k + 32 <= bytes; k += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + k), v);
  }
  if (k < bytes) std::memcpy(d + k, s + k, bytes - k);
}

// ---- AVX-512 tier (8 x 64-bit lanes) ---------------------------------------

__attribute__((target("avx512f"))) void gather_offsets_u64_avx512(
    const std::byte* base, const std::uint64_t* offsets, std::size_t n,
    std::uint64_t* out) noexcept {
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512i vidx =
        _mm512_loadu_si512(reinterpret_cast<const void*>(offsets + k));
    const __m512i v = _mm512_i64gather_epi64(vidx, base, 1);
    _mm512_storeu_si512(reinterpret_cast<void*>(out + k), v);
  }
  // Masked tail: one gather instead of a scalar loop.
  if (k < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - k)) - 1u);
    const __m512i vidx = _mm512_maskz_loadu_epi64(m, offsets + k);
    const __m512i v = _mm512_mask_i64gather_epi64(_mm512_setzero_si512(), m,
                                                  vidx, base, 1);
    _mm512_mask_storeu_epi64(out + k, m, v);
  }
}

__attribute__((target("avx512f"))) void gather_index_f64_avx512(
    const double* base, const std::uint32_t* idx, std::size_t n,
    double* out) noexcept {
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    const __m512d v = _mm512_i32gather_pd(vidx, base, 8);
    _mm512_storeu_pd(out + k, v);
  }
  if (k < n) {
    // Padded tail load keeps this function on plain avx512f (the 256-bit
    // masked loads are AVX512VL); inactive gather lanes touch no memory.
    std::uint32_t tail[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::memcpy(tail, idx + k, (n - k) * sizeof(std::uint32_t));
    const __mmask8 m = static_cast<__mmask8>((1u << (n - k)) - 1u);
    const __m256i vidx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tail));
    const __m512d v =
        _mm512_mask_i32gather_pd(_mm512_setzero_pd(), m, vidx, base, 8);
    _mm512_mask_storeu_pd(out + k, m, v);
  }
}

__attribute__((target("avx512f"))) void gather_index_u64_avx512(
    const std::uint64_t* base, const std::uint32_t* idx, std::size_t n,
    std::uint64_t* out) noexcept {
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    const __m512i v = _mm512_i32gather_epi64(vidx, base, 8);
    _mm512_storeu_si512(reinterpret_cast<void*>(out + k), v);
  }
  if (k < n) {
    std::uint32_t tail[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::memcpy(tail, idx + k, (n - k) * sizeof(std::uint32_t));
    const __mmask8 m = static_cast<__mmask8>((1u << (n - k)) - 1u);
    const __m256i vidx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tail));
    const __m512i v = _mm512_mask_i32gather_epi64(_mm512_setzero_si512(), m,
                                                  vidx, base, 8);
    _mm512_mask_storeu_epi64(out + k, m, v);
  }
}

__attribute__((target("avx512f"))) void stream_copy_avx512(
    void* dst, const void* src, std::size_t bytes) noexcept {
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  std::size_t k = 0;
  for (; k + 64 <= bytes; k += 64) {
    const __m512i v = _mm512_loadu_si512(reinterpret_cast<const void*>(s + k));
    _mm512_storeu_si512(reinterpret_cast<void*>(d + k), v);
  }
  if (k < bytes) std::memcpy(d + k, s + k, bytes - k);
}

#endif  // CASC_SIMD_X86

// ---- tier selection --------------------------------------------------------

Tier detect() noexcept {
#if CASC_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return Tier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#endif
  return Tier::kScalar;
}

// -1 = no override; otherwise the forced tier as an int.
std::atomic<int> g_forced_tier{-1};

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kAvx512:
      return "avx512";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

Tier detected_tier() noexcept {
  static const Tier tier = detect();
  return tier;
}

bool no_simd_env() noexcept {
  static const bool no_simd = [] {
    const char* v = std::getenv("CASC_NO_SIMD");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return no_simd;
}

Tier active_tier() noexcept {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  const Tier cap = no_simd_env() ? Tier::kScalar : detected_tier();
  if (forced < 0) return cap;
  return static_cast<int>(cap) < forced ? cap : static_cast<Tier>(forced);
}

void force_tier(Tier tier) noexcept {
  g_forced_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void clear_forced_tier() noexcept {
  g_forced_tier.store(-1, std::memory_order_relaxed);
}

// ---- dispatchers -----------------------------------------------------------
// One relaxed load + switch per call; every call site hands the kernels a
// whole run (hundreds to thousands of elements), so dispatch cost is noise.

void gather_offsets_u64(const std::byte* base, const std::uint64_t* offsets,
                        std::size_t n, std::uint64_t* out) noexcept {
#if CASC_SIMD_X86
  switch (active_tier()) {
    case Tier::kAvx512:
      gather_offsets_u64_avx512(base, offsets, n, out);
      return;
    case Tier::kAvx2:
      gather_offsets_u64_avx2(base, offsets, n, out);
      return;
    case Tier::kScalar:
      break;
  }
#endif
  gather_offsets_u64_scalar(base, offsets, n, out);
}

void gather_index_f64(const double* base, const std::uint32_t* idx,
                      std::size_t n, double* out) noexcept {
#if CASC_SIMD_X86
  switch (active_tier()) {
    case Tier::kAvx512:
      gather_index_f64_avx512(base, idx, n, out);
      return;
    case Tier::kAvx2:
      gather_index_f64_avx2(base, idx, n, out);
      return;
    case Tier::kScalar:
      break;
  }
#endif
  gather_index_f64_scalar(base, idx, n, out);
}

void gather_index_u64(const std::uint64_t* base, const std::uint32_t* idx,
                      std::size_t n, std::uint64_t* out) noexcept {
#if CASC_SIMD_X86
  switch (active_tier()) {
    case Tier::kAvx512:
      gather_index_u64_avx512(base, idx, n, out);
      return;
    case Tier::kAvx2:
      gather_index_u64_avx2(base, idx, n, out);
      return;
    case Tier::kScalar:
      break;
  }
#endif
  gather_index_u64_scalar(base, idx, n, out);
}

void stream_copy(void* dst, const void* src, std::size_t bytes) noexcept {
#if CASC_SIMD_X86
  switch (active_tier()) {
    case Tier::kAvx512:
      stream_copy_avx512(dst, src, bytes);
      return;
    case Tier::kAvx2:
      stream_copy_avx2(dst, src, bytes);
      return;
    case Tier::kScalar:
      break;
  }
#endif
  std::memcpy(dst, src, bytes);
}

}  // namespace casc::common::simd
