#include "casc/common/diagnostic.hpp"

#include <cstdlib>
#include <sstream>

namespace casc::common {

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string render_text(const Diagnostic& diag) {
  std::ostringstream os;
  os << to_string(diag.severity) << '[' << diag.rule << ']';
  if (!diag.loop.empty() || diag.line > 0) {
    os << ' ' << diag.loop;
    if (diag.line > 0) os << ':' << diag.line;
  }
  if (!diag.object.empty()) os << " (" << diag.object << ')';
  os << ": " << diag.message;
  return os.str();
}

void DiagnosticList::add(Diagnostic diag) {
  switch (diag.severity) {
    case Severity::kNote: ++notes_; break;
    case Severity::kWarning: ++warnings_; break;
    case Severity::kError: ++errors_; break;
  }
  items_.push_back(std::move(diag));
}

void DiagnosticList::note(std::string rule, std::string message, std::string object,
                          int line) {
  add({Severity::kNote, std::move(rule), std::move(message), "", std::move(object),
       line});
}

void DiagnosticList::warning(std::string rule, std::string message,
                             std::string object, int line) {
  add({Severity::kWarning, std::move(rule), std::move(message), "",
       std::move(object), line});
}

void DiagnosticList::error(std::string rule, std::string message, std::string object,
                           int line) {
  add({Severity::kError, std::move(rule), std::move(message), "", std::move(object),
       line});
}

void DiagnosticList::merge(const DiagnosticList& other) {
  for (const Diagnostic& diag : other.items_) add(diag);
}

void DiagnosticList::set_loop(const std::string& loop) {
  for (Diagnostic& diag : items_) {
    if (diag.loop.empty()) diag.loop = loop;
  }
}

const Diagnostic* DiagnosticList::first_error() const noexcept {
  for (const Diagnostic& diag : items_) {
    if (diag.severity == Severity::kError) return &diag;
  }
  return nullptr;
}

std::string DiagnosticList::render_text() const {
  std::string out;
  for (const Diagnostic& diag : items_) {
    out += casc::common::render_text(diag);
    out += '\n';
  }
  return out;
}

bool verification_enabled() {
  const char* env = std::getenv("CASC_NO_VERIFY");
  if (env == nullptr || env[0] == '\0') return true;
  return env[0] == '0' && env[1] == '\0';
}

}  // namespace casc::common
