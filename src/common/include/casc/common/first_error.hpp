// First-failure latch for concurrent workers.  Many threads may fail at
// once; exactly one exception must win, be kept alive as a
// std::exception_ptr, and later be rethrown on the thread that owns the
// operation.  The latch is lock-free on the failure path (a single CAS), and
// the winner's exception_ptr/tag writes are published to the reader by
// whatever synchronization ends the operation (e.g. a join or a
// mutex-guarded done-count) — the latch itself only guarantees uniqueness.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

namespace casc::common {

class FirstError {
 public:
  /// Sentinel tag meaning "no failure recorded".
  static constexpr std::uint64_t kNoTag = ~0ull;

  /// Records the in-flight exception (must be called inside a catch block)
  /// with a caller-chosen tag (e.g. the failing chunk index).  Only the
  /// first caller wins; returns true iff this call captured.
  bool capture(std::uint64_t tag) noexcept {
    bool expected = false;
    if (!latched_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      return false;
    }
    error_ = std::current_exception();
    tag_ = tag;
    return true;
  }

  /// True once some thread has captured.  Acquire, so a reader that already
  /// synchronized with the winner may read error()/tag().
  [[nodiscard]] bool failed() const noexcept {
    return latched_.load(std::memory_order_acquire);
  }

  /// The winning exception (null if none).  Only safe to call after the
  /// winner's thread has been synchronized with (see class comment).
  [[nodiscard]] std::exception_ptr error() const noexcept { return error_; }

  /// The winner's tag, or kNoTag.
  [[nodiscard]] std::uint64_t tag() const noexcept {
    return failed() ? tag_ : kNoTag;
  }

  /// Rethrows the captured exception.  Precondition: failed().
  [[noreturn]] void rethrow() const { std::rethrow_exception(error_); }

  /// Re-arms the latch for the next operation (single-threaded context only).
  void reset() noexcept {
    error_ = nullptr;
    tag_ = kNoTag;
    latched_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> latched_{false};
  std::exception_ptr error_;
  std::uint64_t tag_ = kNoTag;
};

}  // namespace casc::common
