// Cache-line alignment utilities shared by the simulator and the real runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

namespace casc::common {

/// Size, in bytes, we assume for a destructive-interference-free boundary.
/// std::hardware_destructive_interference_size is not universally available
/// (and is an ABI hazard in headers), so we pin the conventional x86 value.
inline constexpr std::size_t kCacheLineSize = 64;

/// Transparent-huge-page granularity (x86-64 2 MB).  The single source of
/// truth for every allocation tier decision: buffers at or above this size
/// are huge-page aligned and madvise(MADV_HUGEPAGE)d so a large staging area
/// costs one TLB entry instead of hundreds (see aligned_alloc.hpp).
inline constexpr std::size_t kHugePageSize = std::size_t{2} << 20;

/// Allocation size at or above which the huge-page tier kicks in.  Kept as a
/// named constant (rather than reusing kHugePageSize inline) so the policy
/// reads as a policy at call sites.
inline constexpr std::size_t kHugePageThreshold = kHugePageSize;

/// Wraps a value so that it occupies its own cache line(s).  Used for
/// per-processor state (token slots, counters) that must not false-share.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  static_assert(std::is_object_v<T>, "CacheAligned requires an object type");

  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}
  explicit CacheAligned(T&& v) : value(static_cast<T&&>(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

/// Rounds `n` up to the next multiple of `alignment` (which must be a power
/// of two).
constexpr std::uint64_t round_up(std::uint64_t n, std::uint64_t alignment) noexcept {
  return (n + alignment - 1) & ~(alignment - 1);
}

/// Rounds `n` down to a multiple of `alignment` (power of two).
constexpr std::uint64_t round_down(std::uint64_t n, std::uint64_t alignment) noexcept {
  return n & ~(alignment - 1);
}

/// True iff `n` is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

/// floor(log2(n)) for n >= 1.
constexpr unsigned log2_floor(std::uint64_t n) noexcept {
  unsigned r = 0;
  while (n >>= 1) ++r;
  return r;
}

}  // namespace casc::common
