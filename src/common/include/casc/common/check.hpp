// Runtime precondition checking.  These are *always-on* checks (they guard
// API misuse in a library whose results feed published numbers), expressed as
// exceptions so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace casc::common {

/// Thrown when a CASC_CHECK precondition fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace casc::common

/// Verifies `cond`; throws casc::common::CheckFailure with location info and
/// the optional message otherwise.  Never compiled out.
#define CASC_CHECK(cond, ...)                                                    \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::casc::common::check_failed(#cond, __FILE__, __LINE__,                    \
                                   ::std::string{__VA_ARGS__});                  \
    }                                                                            \
  } while (false)

// Debug-only checking for per-iteration hot paths (sequential-buffer cursors,
// helper inner loops).  Active in Debug builds (no NDEBUG) and in sanitizer
// builds (the CASC_SANITIZE CMake option defines CASC_FORCE_DCHECK), compiled
// down to nothing in Release — per-chunk and API-boundary invariants must stay
// on CASC_CHECK.
#if !defined(NDEBUG) || defined(CASC_FORCE_DCHECK)
#define CASC_DCHECK_IS_ON 1
#else
#define CASC_DCHECK_IS_ON 0
#endif

#if CASC_DCHECK_IS_ON
#define CASC_DCHECK(...) CASC_CHECK(__VA_ARGS__)
#else
#define CASC_DCHECK(cond, ...)   \
  do {                           \
    if (false) {                 \
      (void)(cond);              \
    }                            \
  } while (false)
#endif

namespace casc::common {
/// Whether CASC_DCHECK fires in this build — lets tests assert on the checked
/// behaviour only when it exists.
inline constexpr bool kDcheckEnabled = CASC_DCHECK_IS_ON == 1;
}  // namespace casc::common
