// Runtime precondition checking.  These are *always-on* checks (they guard
// API misuse in a library whose results feed published numbers), expressed as
// exceptions so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace casc::common {

/// Thrown when a CASC_CHECK precondition fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace casc::common

/// Verifies `cond`; throws casc::common::CheckFailure with location info and
/// the optional message otherwise.  Never compiled out.
#define CASC_CHECK(cond, ...)                                                    \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::casc::common::check_failed(#cond, __FILE__, __LINE__,                    \
                                   ::std::string{__VA_ARGS__});                  \
    }                                                                            \
  } while (false)
