// Runtime-dispatched SIMD gather/pack kernels for the cascade's staging hot
// paths.
//
// The restructuring helper is a gather loop (resolve scattered operand
// values, pack them densely into a SequentialBuffer) and the execution
// phase a stream loop over the packed values.  Both are exactly the loops
// vector ISAs have gather/stream instructions for, so this header exposes
// them as kernels with three implementations each:
//
//   * scalar   — portable reference; ALSO the semantic ground truth: every
//                vector tier must produce bit-identical output (the kernels
//                move bytes, they never compute on values, so identity is
//                exact, not approximate);
//   * AVX2     — 4-lane 64-bit gathers (VPGATHERQQ / VGATHERDPD);
//   * AVX-512  — 8-lane 64-bit gathers (VPGATHERQQ / VGATHERDPD zmm).
//
// The tier is selected ONCE from cpuid (GCC/Clang __builtin_cpu_supports)
// and can be forced down:
//   * CASC_NO_SIMD=1 in the environment pins the scalar tier for the whole
//     process (the CI fallback gate and the property tests' control arm);
//   * force_tier() clamps the active tier at runtime (tests exercise every
//     tier the host supports in one process).
//
// The vector implementations are compiled with per-function target
// attributes, so the translation unit builds with the default flags and the
// binary stays runnable on any x86-64 (or non-x86) host.
#pragma once

#include <cstddef>
#include <cstdint>

namespace casc::common::simd {

/// Instruction-set tiers, ordered: a tier implies every lower one.
enum class Tier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Human-readable tier name ("scalar", "avx2", "avx512").
[[nodiscard]] const char* tier_name(Tier tier) noexcept;

/// Best tier the host CPU supports (cpuid; cached after the first call).
[[nodiscard]] Tier detected_tier() noexcept;

/// True when CASC_NO_SIMD is set (non-empty, not "0") in the environment.
[[nodiscard]] bool no_simd_env() noexcept;

/// Tier the kernels dispatch on: detected_tier(), clamped by CASC_NO_SIMD
/// and any force_tier() override.
[[nodiscard]] Tier active_tier() noexcept;

/// Clamps the active tier (test hook; never raises above detected_tier()).
void force_tier(Tier tier) noexcept;

/// Removes the force_tier() override.
void clear_forced_tier() noexcept;

// ---- kernels ---------------------------------------------------------------
//
// All kernels tolerate n == 0 and any alignment of their pointer operands
// (gathered addresses are scattered by definition; destinations use
// unaligned stores, which are full speed on aligned addresses — and the
// aligned allocator makes destinations aligned in practice).

/// out[k] = the 8-byte little-endian word at base + offsets[k].
/// Every offsets[k] must satisfy offsets[k] + 8 <= size of the region.
void gather_offsets_u64(const std::byte* base, const std::uint64_t* offsets,
                        std::size_t n, std::uint64_t* out) noexcept;

/// out[k] = base[idx[k]] for doubles.  Vector tiers use 32-bit signed lane
/// indices, so every idx[k] must be < 2^31 (callers gate on the base
/// array's length; the scalar tier has no such limit).
void gather_index_f64(const double* base, const std::uint32_t* idx,
                      std::size_t n, double* out) noexcept;

/// out[k] = base[idx[k]] for 64-bit words.  Same index-range contract as
/// gather_index_f64.
void gather_index_u64(const std::uint64_t* base, const std::uint32_t* idx,
                      std::size_t n, std::uint64_t* out) noexcept;

/// Dense pack/stream copy (the drain side of the staging path).  Semantics
/// of memcpy for non-overlapping regions.
void stream_copy(void* dst, const void* src, std::size_t bytes) noexcept;

}  // namespace casc::common::simd
