// Streaming summary statistics (Welford) plus percentile helpers; used by
// benches and by the report layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace casc::common {

/// Single-pass mean / variance / min / max accumulator (Welford's algorithm,
/// numerically stable).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel-combine form).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` using linear
/// interpolation between closest ranks.  Copies and sorts internally; meant
/// for bench post-processing, not hot paths.  Empty input yields 0.
double quantile(std::vector<double> values, double q);

/// Geometric mean of strictly positive values; 0 on empty input.
double geometric_mean(const std::vector<double>& values);

}  // namespace casc::common
