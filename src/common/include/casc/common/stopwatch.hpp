// Wall-clock stopwatch for the real-thread runtime benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace casc::common {

/// Monotonic stopwatch.  Construction starts it; `elapsed_ns()` reads without
/// stopping, `restart()` rebases.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace casc::common
