// Structured diagnostics for the analysis/verification pipeline.  A
// Diagnostic is one finding: a severity, a stable rule id (what was checked),
// a human-readable message, and an optional source span (line in a .casc
// spec) plus the loop/object it concerns.  The loop-spec parser, the static
// verifier passes, the trace-backed shadow checker, and the runtime preflight
// gates all speak this type, so tools (casclint) and tests can consume
// findings uniformly instead of parsing exception strings.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace casc::common {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] std::string to_string(Severity severity);

/// One finding.  `rule` ids are stable, kebab-case identifiers documented in
/// docs/ANALYSIS.md (e.g. "classify-write-ro", "hazard-cross-chunk").
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;
  std::string message;
  std::string loop;    ///< loop name, when known
  std::string object;  ///< array / access the finding concerns, when known
  int line = 0;        ///< 1-based line in the source spec; 0 = no source span
};

/// Renders "error[rule] loop:line (object): message" (omitting empty parts).
[[nodiscard]] std::string render_text(const Diagnostic& diag);

/// An append-only collection of diagnostics with severity tallies.
class DiagnosticList {
 public:
  void add(Diagnostic diag);
  void note(std::string rule, std::string message, std::string object = "",
            int line = 0);
  void warning(std::string rule, std::string message, std::string object = "",
               int line = 0);
  void error(std::string rule, std::string message, std::string object = "",
             int line = 0);

  /// Appends every diagnostic of `other` (used to merge pass outputs).
  void merge(const DiagnosticList& other);

  /// Stamps `loop` onto every diagnostic that does not carry one yet.
  void set_loop(const std::string& loop);

  [[nodiscard]] const std::vector<Diagnostic>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] std::size_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::size_t warnings() const noexcept { return warnings_; }
  [[nodiscard]] std::size_t notes() const noexcept { return notes_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  /// True when no *errors* were recorded (warnings/notes are advisory).
  [[nodiscard]] bool ok() const noexcept { return errors_ == 0; }

  /// First error, or nullptr when ok().
  [[nodiscard]] const Diagnostic* first_error() const noexcept;

  /// All findings, one render_text() line each.
  [[nodiscard]] std::string render_text() const;

 private:
  std::vector<Diagnostic> items_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
  std::size_t notes_ = 0;
};

/// True unless the CASC_NO_VERIFY environment variable is set to a non-empty,
/// non-"0" value.  Gates every default-on preflight verification; reread on
/// each call so tests (and operators) can flip it at runtime.
[[nodiscard]] bool verification_enabled();

}  // namespace casc::common
