// Unified aligned allocation for every staged byte in the system.
//
// The cascade's hot loops are gather/pack/stream kernels over staging
// buffers and materialized backing arrays; SIMD kernels and the TLB both
// care where those bytes land.  This header is the single policy point:
//
//   * allocations below kHugePageThreshold are cache-line aligned (64 B) so
//     vector loads never straddle a line for size-aligned element types;
//   * allocations at or above it are huge-page aligned (2 MB) and
//     madvise(MADV_HUGEPAGE)d, so a large operand staging area costs one TLB
//     entry instead of hundreds.
//
// Two adapters over the same policy:
//
//   * AlignedStorage — RAII byte arena for code that manages its own layout
//     (rt::SequentialBuffer);
//   * AlignedAllocator<T> — std::allocator drop-in so containers
//     (exec::MaterializedLoop's backing arrays) land on the same tiers
//     without changing their call sites beyond the template argument.
//
// The madvise return value is CHECKED: a failure is counted
// (thp_advise_failures()) and surfaced once on stderr as a telemetry note
// instead of being silently swallowed — a mis-configured THP setting is a
// performance bug worth seeing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "casc/common/align.hpp"
#include "casc/common/check.hpp"

namespace casc::common {

/// Alignment tier for an allocation of `bytes`: huge-page for large buffers,
/// cache-line otherwise.
[[nodiscard]] constexpr std::size_t alignment_for_size(std::size_t bytes) noexcept {
  return bytes >= kHugePageThreshold ? kHugePageSize : kCacheLineSize;
}

/// Advises the kernel to back [p, p + bytes) with transparent huge pages.
/// Returns true when the advice was accepted (or is a no-op on this
/// platform); on failure increments the process-wide failure counter and
/// emits a one-time telemetry note on stderr.
bool advise_huge_pages(void* p, std::size_t bytes) noexcept;

/// Number of madvise(MADV_HUGEPAGE) calls that failed in this process.
/// Exposed for casc-setup and tests; a nonzero value usually means THP is
/// set to 'never' and the huge-page allocation tier is silently degraded.
[[nodiscard]] std::uint64_t thp_advise_failures() noexcept;

/// RAII byte arena on the tiered alignment policy.  The usable capacity is
/// the requested size rounded up to the chosen alignment (so the last
/// cache line / huge page is fully owned and vector kernels may run to the
/// rounded edge).
class AlignedStorage {
 public:
  AlignedStorage() noexcept = default;

  explicit AlignedStorage(std::size_t bytes)
      : align_(checked_alignment(bytes)),
        size_(round_up(bytes, align_)),
        data_(static_cast<std::byte*>(
            ::operator new[](size_, std::align_val_t{align_}))) {
    if (align_ >= kHugePageSize) (void)advise_huge_pages(data_, size_);
  }

  ~AlignedStorage() {
    if (data_ != nullptr) ::operator delete[](data_, std::align_val_t{align_});
  }

  AlignedStorage(const AlignedStorage&) = delete;
  AlignedStorage& operator=(const AlignedStorage&) = delete;
  AlignedStorage(AlignedStorage&& other) noexcept
      : align_(other.align_), size_(other.size_), data_(other.data_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  AlignedStorage& operator=(AlignedStorage&& other) noexcept {
    if (this != &other) {
      if (data_ != nullptr) ::operator delete[](data_, std::align_val_t{align_});
      align_ = other.align_;
      size_ = other.size_;
      data_ = other.data_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  [[nodiscard]] std::byte* data() noexcept { return data_; }
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  /// Usable capacity: the requested size rounded up to the alignment.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t alignment() const noexcept { return align_; }

 private:
  static std::size_t checked_alignment(std::size_t bytes) {
    CASC_CHECK(bytes > 0, "aligned storage capacity must be positive");
    return alignment_for_size(bytes);
  }

  std::size_t align_ = kCacheLineSize;
  std::size_t size_ = 0;
  std::byte* data_ = nullptr;
};

/// std::allocator drop-in on the tiered alignment policy.  Stateless: the
/// alignment is recomputed from the byte count at deallocate time, so every
/// instance compares equal and containers stay swappable.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    const std::size_t align = alignment_for_size(bytes);
    T* p = static_cast<T*>(::operator new(bytes, std::align_val_t{align}));
    if (align >= kHugePageSize) (void)advise_huge_pages(p, bytes);
    return p;
  }

  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, std::align_val_t{alignment_for_size(n * sizeof(T))});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept { return true; }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept { return false; }
};

}  // namespace casc::common
