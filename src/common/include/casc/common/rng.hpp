// Deterministic, seedable PRNG used everywhere randomness is needed
// (index-array generation, synthetic workloads, property-test sweeps).
// xoshiro256** — fast, high quality, and identical across platforms, unlike
// std::mt19937 + std::uniform_int_distribution whose outputs are
// implementation-defined.
#pragma once

#include <cstdint>

namespace casc::common {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound) via Lemire-style rejection-free widening
  /// multiply.  bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the distribution near-uniform; the tiny modulo
    // bias (< 2^-64 * bound) is irrelevant for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(bound)) >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  constexpr std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace casc::common
