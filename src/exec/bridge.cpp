#include "casc/exec/bridge.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "casc/analysis/verifier.hpp"
#include "casc/common/check.hpp"
#include "casc/common/simd.hpp"
#include "casc/common/stopwatch.hpp"
#include "casc/rt/fault_injection.hpp"
#include "casc/rt/helpers.hpp"

namespace casc::exec {

namespace {

// ---- interpretation kernels ------------------------------------------------
//
// One generic interpreter plus kernels fused per operand-class shape.  The
// generic form re-branches on every ResolvedRef (is it a write? is it
// staged?); for the common uniform bodies the classification already lives in
// MaterializedLoop::body_shape(), so the dispatch happens ONCE per span and
// the inner loops below touch only what their shape needs — the all-staged
// kernel never reads the ResolvedRef table at all.  Every kernel implements
// the same semantics (see materialize.hpp), so digests are bit-identical
// across kernels, helper modes, and SIMD tiers.

/// Generic reference interpreter.  `staged` non-null: consume the next staged
/// value for each staged read (the helper gathered them in stream order).
std::uint64_t interpret_generic(MaterializedLoop& loop, std::uint64_t begin,
                                std::uint64_t end, std::uint64_t acc,
                                const std::uint64_t* staged) {
  for (std::uint64_t it = begin; it < end; ++it) {
    for (const ResolvedRef* ref = loop.refs_begin(it); ref != loop.refs_end(it);
         ++ref) {
      if (ref->is_write) {
        const std::uint64_t w = MaterializedLoop::mix(acc, it);
        loop.store(*ref, w);
        acc = w;
      } else {
        std::uint64_t v;
        if (staged != nullptr && ref->staged) {
          v = *staged++;
        } else {
          v = loop.load(*ref);
        }
        acc = MaterializedLoop::mix(acc, v);
      }
    }
  }
  return acc;
}

/// Fused: every reference is a staged read.  Pure mix-fold over the dense
/// staged span — no ResolvedRef traffic, no branches, the exact loop the
/// hardware stream prefetcher is built for.
std::uint64_t interpret_reads_only(std::uint64_t begin, std::uint64_t end,
                                   std::uint64_t acc,
                                   const std::uint64_t* staged,
                                   std::uint32_t refs_per_iter) {
  const std::uint64_t n = (end - begin) * refs_per_iter;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc = MaterializedLoop::mix(acc, staged[k]);
  }
  return acc;
}

/// Fused: R staged reads then exactly one trailing write per iteration (the
/// dense_sum / gather_split shape).  Only the write slot's ResolvedRef is
/// touched.
std::uint64_t interpret_reads_then_write(MaterializedLoop& loop,
                                         std::uint64_t begin, std::uint64_t end,
                                         std::uint64_t acc,
                                         const std::uint64_t* staged,
                                         std::uint32_t reads) {
  for (std::uint64_t it = begin; it < end; ++it) {
    for (std::uint32_t r = 0; r < reads; ++r) {
      acc = MaterializedLoop::mix(acc, *staged++);
    }
    const ResolvedRef& w = *(loop.refs_end(it) - 1);
    const std::uint64_t wv = MaterializedLoop::mix(acc, it);
    loop.store(w, wv);
    acc = wv;
  }
  return acc;
}

/// Fused: arbitrary uniform slot sequence, driven from the precomputed shape
/// table instead of per-ref flag bytes (the spmv shape: staged reads mixed
/// with plain reads and writes).
std::uint64_t interpret_uniform(MaterializedLoop& loop, std::uint64_t begin,
                                std::uint64_t end, std::uint64_t acc,
                                const std::uint64_t* staged,
                                const std::vector<SlotKind>& slots) {
  for (std::uint64_t it = begin; it < end; ++it) {
    const ResolvedRef* ref = loop.refs_begin(it);
    for (const SlotKind kind : slots) {
      switch (kind) {
        case SlotKind::kStagedRead:
          acc = MaterializedLoop::mix(acc, *staged++);
          break;
        case SlotKind::kPlainRead:
          acc = MaterializedLoop::mix(acc, loop.load(*ref));
          break;
        case SlotKind::kWrite: {
          const std::uint64_t w = MaterializedLoop::mix(acc, it);
          loop.store(*ref, w);
          acc = w;
          break;
        }
      }
      ++ref;
    }
  }
  return acc;
}

/// Interprets iterations [begin, end) against real storage, continuing from
/// `acc`.  `staged` non-null: the chunk's staged operand values, gathered by
/// the helper in stream order.  Dispatches once to the best kernel the body
/// shape admits.
std::uint64_t interpret_span(MaterializedLoop& loop, std::uint64_t begin,
                             std::uint64_t end, std::uint64_t acc,
                             const std::uint64_t* staged) {
  if (staged != nullptr) {
    const BodyShape& shape = loop.body_shape();
    if (shape.uniform && shape.plain_reads == 0) {
      if (shape.writes == 0) {
        return interpret_reads_only(begin, end, acc, staged,
                                    shape.staged_reads);
      }
      if (shape.writes == 1 && shape.slots.back() == SlotKind::kWrite) {
        return interpret_reads_then_write(loop, begin, end, acc, staged,
                                          shape.staged_reads);
      }
    }
    if (shape.uniform) {
      return interpret_uniform(loop, begin, end, acc, staged, shape.slots);
    }
  }
  return interpret_generic(loop, begin, end, acc, staged);
}

}  // namespace

core::ChunkPlan plan_for(const MaterializedLoop& loop, std::uint64_t chunk_bytes) {
  return core::ChunkPlan::for_iters_per_bytes(loop.num_iterations(),
                                              loop.nest().bytes_per_iteration(),
                                              chunk_bytes);
}

rt::PreflightGate gate_for(const MaterializedLoop& loop, std::uint64_t chunk_bytes) {
  analysis::AnalyzeOptions opt;
  opt.chunk_bytes = chunk_bytes;
  const analysis::AnalysisReport report = analysis::analyze(loop.spec(), opt);
  if (report.restructure_eligible) return rt::PreflightGate::proven();
  common::Diagnostic reason{common::Severity::kError, "preflight-unproven",
                            "the analysis verifier could not prove the spec "
                            "restructure-eligible"};
  for (const common::Diagnostic& diag : report.diags.items()) {
    if (diag.severity == common::Severity::kError) {
      reason = diag;
      break;
    }
  }
  return rt::PreflightGate::refused(std::move(reason));
}

rt::PreflightGate gate_for(const MaterializedLoop& loop,
                           std::uint64_t chunk_bytes, std::uint64_t workers,
                           std::vector<std::string>* certified) {
  analysis::AnalyzeOptions opt;
  opt.chunk_bytes = chunk_bytes;
  const analysis::AnalysisReport report = analysis::analyze(loop.spec(), opt);
  if (report.restructure_eligible) return rt::PreflightGate::proven();

  // The certifier can only overturn staging-claim failures: the claims said
  // read-only, the resolved addresses may prove the staged bytes write-free
  // anyway.  Anything else (layout overlap, footprint escape, parse errors)
  // is outside the certificate's scope and keeps the refusal.
  auto staging_rule = [](const std::string& rule) {
    return rule == "classify-write-ro" || rule == "hazard-cross-chunk" ||
           rule == "shadow-write-ro" || rule == "shadow-hazard-cross-chunk";
  };
  common::Diagnostic reason{common::Severity::kError, "preflight-unproven",
                            "the analysis verifier could not prove the spec "
                            "restructure-eligible"};
  bool have_reason = false;
  bool only_staging = true;
  for (const common::Diagnostic& diag : report.diags.items()) {
    if (diag.severity != common::Severity::kError) continue;
    if (!have_reason) {
      reason = diag;
      have_reason = true;
    }
    if (!staging_rule(diag.rule)) only_staging = false;
  }
  if (only_staging) {
    analysis::CertifyOptions copt;
    copt.chunk_bytes = chunk_bytes;
    const analysis::Certificate cert = analysis::certify(loop.spec(), copt);
    if (cert.certifies_staging(workers)) {
      if (certified != nullptr) *certified = cert.certified_operands(workers);
      return rt::PreflightGate::proven();
    }
  }
  return rt::PreflightGate::refused(std::move(reason));
}

std::optional<ReductionOperand> find_reduction_operand(
    const loopir::LoopSpec& spec) {
  common::DiagnosticList diags;
  for (const analysis::OperandClass& c :
       analysis::classify_operands(spec, diags)) {
    if (c.reduction()) return ReductionOperand{c.name, c.reduce_op, c.kind()};
  }
  return std::nullopt;
}

namespace {

/// Sequential interpretation against the arrays' CURRENT contents — the
/// pipeline paths sequence resets at chain level, so the per-loop entry
/// point's reset is split out.
ExecResult reference_no_reset(MaterializedLoop& loop) {
  ExecResult result;
  result.total_iters = loop.num_iterations();
  result.iters_per_chunk = result.total_iters;
  common::Stopwatch watch;
  result.digest = interpret_span(loop, 0, result.total_iters,
                                 MaterializedLoop::kAccSeed, nullptr);
  result.seconds = watch.elapsed_seconds();
  result.rw_checksum = loop.rw_checksum();
  return result;
}

}  // namespace

ExecResult run_reference(MaterializedLoop& loop) {
  loop.reset();
  return reference_no_reset(loop);
}

namespace {

/// One cascaded run against the arrays' CURRENT contents (see
/// reference_no_reset): the body of the per-loop run_cascaded entry point,
/// also the per-stage engine of run_pipeline_independent.
ExecResult cascaded_no_reset(MaterializedLoop& loop,
                             rt::CascadeExecutor& executor,
                             const RtOptions& opt) {
  const std::uint64_t total = loop.num_iterations();
  std::uint64_t ipc = opt.iters_per_chunk;
  if (ipc == 0) ipc = plan_for(loop, opt.chunk_bytes).iters_per_chunk();
  CASC_CHECK(ipc > 0, "iters_per_chunk must be positive");
  const std::uint64_t num_chunks = total == 0 ? 0 : (total + ipc - 1) / ipc;

  ExecResult result;
  result.total_iters = total;
  result.iters_per_chunk = ipc;
  result.num_chunks = std::max<std::uint64_t>(1, num_chunks);
  if (total == 0) {
    result.digest = MaterializedLoop::kAccSeed;
    result.rw_checksum = loop.rw_checksum();
    return result;
  }

  // The loop-carried accumulator crosses chunk boundaries on the token's
  // release/acquire edge — the same edge that makes the arrays' own writes
  // visible to the next execution phase.
  std::uint64_t acc = MaterializedLoop::kAccSeed;

  auto staged_in = [&](std::uint64_t begin, std::uint64_t end) {
    return loop.staged_refs_before(end) - loop.staged_refs_before(begin);
  };

  // Helper and execution phase of chunk c run on the same worker (c mod P),
  // so the staged flags need no synchronization.
  std::vector<char> chunk_staged(num_chunks, 0);
  rt::PreflightGate gate = rt::PreflightGate::proven();
  rt::PerWorkerBuffers* buffers = nullptr;
  std::unique_ptr<rt::PerWorkerBuffers> buffers_owned;
  if (opt.helper == HelperMode::kRestructure) {
    // Gate before sizing: a certificate can re-enable staging the claim
    // demotion turned off (restage grows max_staged_per_iter), so the
    // buffers must be sized after the gate has had its say.
    std::vector<std::string> certified;
    gate = gate_for(loop, opt.chunk_bytes, executor.num_threads(), &certified);
    if (gate.allow_restructure() && !certified.empty()) {
      loop.restage(certified);
    }
    const std::uint64_t capacity =
        std::max<std::uint64_t>(64, loop.max_staged_per_iter() * ipc * 8);
    buffers_owned = std::make_unique<rt::PerWorkerBuffers>(
        executor.num_threads(), capacity, ipc, opt.lookahead);
    buffers = buffers_owned.get();
  }

  auto exec = [&](std::uint64_t begin, std::uint64_t end) {
    const std::uint64_t c = begin / ipc;
    // The fail-soft context gates the staged path: a reclaimed chunk runs on
    // a non-owner thread (whose buffers these are not — and the short-circuit
    // also keeps it from touching the owner's chunk_staged slot), and a
    // suspect-staging chunk must ignore whatever its faulty helper committed.
    const rt::ExecContext& ctx = executor.current_exec_context();
    if (buffers != nullptr && !ctx.reclaimed && !ctx.staging_invalid &&
        chunk_staged[c] != 0) {
      auto cursor = buffers->for_chunk_index(c).read_cursor<std::uint64_t>(
          staged_in(begin, end));
      acc = interpret_span(loop, begin, end, acc, cursor.data());
    } else {
      acc = interpret_span(loop, begin, end, acc, nullptr);
    }
  };

  auto prefetch_helper = [&](std::uint64_t begin, std::uint64_t end,
                             const rt::TokenWatch& watch) -> bool {
    for (std::uint64_t it = begin; it < end; ++it) {
      if ((it & 0x3f) == 0 && watch.signalled()) return false;
      for (const ResolvedRef* ref = loop.refs_begin(it); ref != loop.refs_end(it);
           ++ref) {
        rt::force_load(loop.addr(*ref));
      }
    }
    return true;
  };

  auto restructure_helper = [&](std::uint64_t begin, std::uint64_t end,
                                const rt::TokenWatch& watch) -> bool {
    const std::uint64_t c = begin / ipc;
    rt::SequentialBuffer& buf = buffers->for_chunk_index(c);
    buf.reset();
    // Walk the SoA staged stream for this chunk instead of the interleaved
    // ResolvedRef records: runs of same-array full-word references become one
    // SIMD gather call each, with the byte offsets as the index vector.
    const std::uint64_t p1 = loop.staged_refs_before(end);
    std::uint64_t p = loop.staged_refs_before(begin);
    auto cursor = buf.write_cursor<std::uint64_t>(p1 - p);
    const std::uint64_t* offs = loop.staged_offsets();
    const std::uint32_t* arrs = loop.staged_arrays();
    const std::uint8_t* sizes = loop.staged_sizes();
    constexpr std::uint64_t kPoll = 1024;  // staged refs between token polls
    while (p < p1) {
      // Abandoning the uncommitted cursor discards the partial staging; the
      // execution phase falls back to gathering from the arrays.
      if (watch.signalled()) return false;
      const std::uint64_t block_end = std::min(p1, p + kPoll);
      while (p < block_end) {
        const std::uint32_t a = arrs[p];
        if (sizes[p] == 8) {
          std::uint64_t q = p + 1;
          while (q < block_end && arrs[q] == a && sizes[q] == 8) ++q;
          common::simd::gather_offsets_u64(loop.array_data(a), offs + p, q - p,
                                           cursor.reserve_span(q - p));
          cursor.advance(q - p);
          p = q;
        } else {
          // Narrow element: zero-extended little-endian load, exactly
          // MaterializedLoop::load()'s semantics.
          std::uint64_t v = 0;
          std::memcpy(&v, loop.array_data(a) + offs[p],
                      std::min<std::size_t>(sizes[p], 8));
          cursor.push(v);
          ++p;
        }
      }
    }
    cursor.commit();
    chunk_staged[c] = 1;
    return true;
  };

  if (opt.soft_budget_factor > 0.0 && opt.estimated_seq_seconds > 0.0) {
    const auto demote_ms = std::chrono::milliseconds(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(opt.soft_budget_factor *
                                     opt.estimated_seq_seconds * 1e3)));
    executor.set_soft_budget(demote_ms, 2 * demote_ms);
  }

  // Chaos arming: wrap the run's helper in the planned fault schedule.  The
  // owning HelperFn locals keep the armed wrappers alive across run().
  const bool chaos_on = opt.chaos != nullptr && !opt.chaos->empty();
  rt::HelperFn armed;

  common::Stopwatch watch;
  switch (opt.helper) {
    case HelperMode::kNone:
      if (chaos_on) {
        // No helper to fault: install a no-op one so the planned faults
        // still exercise the quarantine/backoff machinery.
        armed = opt.chaos->arm(nullptr);
        executor.run(total, ipc, exec, armed);
      } else {
        executor.run(total, ipc, exec);
      }
      break;
    case HelperMode::kPrefetch:
      if (chaos_on) {
        armed = opt.chaos->arm(prefetch_helper);
        executor.run(total, ipc, exec, armed);
      } else {
        executor.run(total, ipc, exec, prefetch_helper);
      }
      break;
    case HelperMode::kRestructure: {
      if (chaos_on) {
        armed = opt.chaos->arm(restructure_helper);
        executor.run(total, ipc, exec, armed, gate);
      } else {
        executor.run(total, ipc, exec, restructure_helper, gate);
      }
      break;
    }
  }
  result.seconds = watch.elapsed_seconds();

  const rt::RunStats& stats = executor.last_run_stats();
  result.transfers = stats.transfers;
  result.helpers_completed = stats.helpers_completed;
  result.helpers_jumped_out = stats.helpers_jumped_out;
  result.preflight_refused = stats.preflight_refused;
  result.preflight_diag = stats.preflight_diag;
  result.helper_faults = stats.helper_faults;
  result.chunks_reclaimed = stats.chunks_reclaimed;
  result.helper_retries = stats.helper_retries;
  result.stagings_invalidated = stats.stagings_invalidated;
  result.workers_quarantined = stats.workers_quarantined;
  result.demotion_level = stats.demotion_level;
  result.degraded = stats.degraded();
  result.staged_chunks = static_cast<std::uint64_t>(
      std::count(chunk_staged.begin(), chunk_staged.end(), char{1}));
  result.digest = acc;
  result.rw_checksum = loop.rw_checksum();
  return result;
}

}  // namespace

ExecResult run_cascaded(MaterializedLoop& loop, rt::CascadeExecutor& executor,
                        const RtOptions& opt) {
  loop.reset();
  return cascaded_no_reset(loop, executor, opt);
}

// ---- pipelines -------------------------------------------------------------

namespace {

/// Staging state of one arena region, carried from the stage that gathered
/// it to the stages the plan lets replay it.  The executor's run() return is
/// the happens-before edge: by the time a later stage consults these, every
/// helper write of the gather stage is visible.
struct RegionState {
  std::vector<char> chunk_staged;  ///< per-chunk commit flags (gather stage)
  std::uint64_t ipc = 0;           ///< the gather stage's chunk geometry
  /// The gather ran clean: staging committed under a proven gate with no
  /// helper faults, reclaimed chunks, or invalidated stagings.  Anything
  /// less and successor stages fall back to full re-staging — reuse is
  /// health-gated on top of the plan's proof.
  bool trustworthy = false;
};

/// Runs one pipeline stage on `executor` against the chain's CURRENT array
/// state, staging through the stage's arena `region` (flat layout: staged
/// reference p of the loop lives at region + 8p, so chunk geometry never
/// shifts the bytes).  With `reuse` the stage gathers nothing and executes
/// against the staged stream `rs` describes; otherwise it stages into the
/// region itself and rewrites `rs` for its successors.
ExecResult run_stage_arena(MaterializedLoop& loop,
                           rt::CascadeExecutor& executor, const RtOptions& opt,
                           std::byte* region, RegionState& rs, bool reuse) {
  const std::uint64_t total = loop.num_iterations();
  std::uint64_t ipc = opt.iters_per_chunk;
  if (ipc == 0 && reuse) ipc = rs.ipc;  // align chunks with the gather's flags
  if (ipc == 0) ipc = plan_for(loop, opt.chunk_bytes).iters_per_chunk();
  CASC_CHECK(ipc > 0, "iters_per_chunk must be positive");
  const std::uint64_t num_chunks = total == 0 ? 0 : (total + ipc - 1) / ipc;

  ExecResult result;
  result.total_iters = total;
  result.iters_per_chunk = ipc;
  result.num_chunks = std::max<std::uint64_t>(1, num_chunks);
  if (total == 0) {
    result.digest = MaterializedLoop::kAccSeed;
    result.rw_checksum = loop.rw_checksum();
    return result;
  }

  if (reuse && (rs.ipc != ipc || rs.chunk_staged.size() != num_chunks)) {
    // Geometry drifted from the gather stage; the commit flags no longer
    // map chunk-for-chunk, so fall back to gathering afresh.  Unreachable
    // under the pipeline runner (full_reuse implies the same trip/step and
    // a reuse stage adopts the gather's ipc), but cheap to keep honest.
    reuse = false;
  }
  const bool staging = opt.helper == HelperMode::kRestructure &&
                       region != nullptr && !reuse;

  std::uint64_t acc = MaterializedLoop::kAccSeed;
  std::vector<char> chunk_staged(num_chunks, 0);
  std::uint64_t* const staged_base = reinterpret_cast<std::uint64_t*>(region);

  rt::PreflightGate gate = rt::PreflightGate::proven();
  if (staging) {
    // Stage specs carry derived (hence honest) read-only claims, so the
    // strict verifier is the whole story here: no demotions exist for the
    // certificate to overturn, and the staged stream always matches the
    // plan's signature — which is what sized the region.
    gate = gate_for(loop, opt.chunk_bytes);
  }

  auto exec = [&](std::uint64_t begin, std::uint64_t end) {
    const std::uint64_t c = begin / ipc;
    const rt::ExecContext& ctx = executor.current_exec_context();
    const std::uint64_t* staged = nullptr;
    if (!ctx.reclaimed && !ctx.staging_invalid) {
      if (reuse && rs.chunk_staged[c] != 0) {
        staged = staged_base + loop.staged_refs_before(begin);
      } else if (staging && chunk_staged[c] != 0) {
        staged = staged_base + loop.staged_refs_before(begin);
      }
    }
    acc = interpret_span(loop, begin, end, acc, staged);
  };

  auto prefetch_helper = [&](std::uint64_t begin, std::uint64_t end,
                             const rt::TokenWatch& watch) -> bool {
    for (std::uint64_t it = begin; it < end; ++it) {
      if ((it & 0x3f) == 0 && watch.signalled()) return false;
      for (const ResolvedRef* ref = loop.refs_begin(it); ref != loop.refs_end(it);
           ++ref) {
        rt::force_load(loop.addr(*ref));
      }
    }
    return true;
  };

  auto arena_helper = [&](std::uint64_t begin, std::uint64_t end,
                          const rt::TokenWatch& watch) -> bool {
    const std::uint64_t c = begin / ipc;
    const std::uint64_t p1 = loop.staged_refs_before(end);
    std::uint64_t p = loop.staged_refs_before(begin);
    const std::uint64_t* offs = loop.staged_offsets();
    const std::uint32_t* arrs = loop.staged_arrays();
    const std::uint8_t* sizes = loop.staged_sizes();
    constexpr std::uint64_t kPoll = 1024;  // staged refs between token polls
    while (p < p1) {
      // A jump-out abandons the partially gathered chunk; its commit flag
      // stays clear and execution falls back to direct array loads.
      if (watch.signalled()) return false;
      const std::uint64_t block_end = std::min(p1, p + kPoll);
      while (p < block_end) {
        const std::uint32_t a = arrs[p];
        if (sizes[p] == 8) {
          std::uint64_t q = p + 1;
          while (q < block_end && arrs[q] == a && sizes[q] == 8) ++q;
          common::simd::gather_offsets_u64(loop.array_data(a), offs + p, q - p,
                                           staged_base + p);
          p = q;
        } else {
          std::uint64_t v = 0;
          std::memcpy(&v, loop.array_data(a) + offs[p],
                      std::min<std::size_t>(sizes[p], 8));
          staged_base[p] = v;
          ++p;
        }
      }
    }
    chunk_staged[c] = 1;
    return true;
  };

  if (opt.soft_budget_factor > 0.0 && opt.estimated_seq_seconds > 0.0) {
    const auto demote_ms = std::chrono::milliseconds(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(opt.soft_budget_factor *
                                     opt.estimated_seq_seconds * 1e3)));
    executor.set_soft_budget(demote_ms, 2 * demote_ms);
  }

  const bool chaos_on = opt.chaos != nullptr && !opt.chaos->empty();
  rt::HelperFn armed;

  common::Stopwatch watch;
  if (staging) {
    if (chaos_on) {
      armed = opt.chaos->arm(arena_helper);
      executor.run(total, ipc, exec, armed, gate);
    } else {
      executor.run(total, ipc, exec, arena_helper, gate);
    }
  } else if (opt.helper == HelperMode::kPrefetch && !reuse) {
    if (chaos_on) {
      armed = opt.chaos->arm(prefetch_helper);
      executor.run(total, ipc, exec, armed);
    } else {
      executor.run(total, ipc, exec, prefetch_helper);
    }
  } else {
    // No helper phase: a reuse stage has nothing to gather, and a none-mode
    // (or stage-nothing) run executes straight from the arrays.
    if (chaos_on) {
      armed = opt.chaos->arm(nullptr);
      executor.run(total, ipc, exec, armed);
    } else {
      executor.run(total, ipc, exec);
    }
  }
  result.seconds = watch.elapsed_seconds();

  const rt::RunStats& stats = executor.last_run_stats();
  result.transfers = stats.transfers;
  result.helpers_completed = stats.helpers_completed;
  result.helpers_jumped_out = stats.helpers_jumped_out;
  result.preflight_refused = stats.preflight_refused;
  result.preflight_diag = stats.preflight_diag;
  result.helper_faults = stats.helper_faults;
  result.chunks_reclaimed = stats.chunks_reclaimed;
  result.helper_retries = stats.helper_retries;
  result.stagings_invalidated = stats.stagings_invalidated;
  result.workers_quarantined = stats.workers_quarantined;
  result.demotion_level = stats.demotion_level;
  result.degraded = stats.degraded();
  result.staged_chunks = static_cast<std::uint64_t>(std::count(
      reuse ? rs.chunk_staged.begin() : chunk_staged.begin(),
      reuse ? rs.chunk_staged.end() : chunk_staged.end(), char{1}));
  result.digest = acc;
  result.rw_checksum = loop.rw_checksum();

  if (!reuse) {
    rs.chunk_staged = std::move(chunk_staged);
    rs.ipc = ipc;
    rs.trustworthy = staging && !stats.preflight_refused &&
                     stats.helper_faults == 0 && stats.chunks_reclaimed == 0 &&
                     stats.stagings_invalidated == 0;
  }
  return result;
}

std::uint64_t fold_chain(std::uint64_t chain, std::uint64_t digest) {
  return MaterializedLoop::mix(chain, digest);
}

}  // namespace

PipelineResult run_pipeline_reference(MaterializedPipeline& pipe) {
  pipe.reset();
  PipelineResult out;
  std::uint64_t chain = MaterializedLoop::kAccSeed;
  common::Stopwatch watch;
  for (std::size_t k = 0; k < pipe.num_stages(); ++k) {
    PipelineStageResult stage;
    stage.name = pipe.spec().stages[k].name;
    stage.result = reference_no_reset(pipe.stage(k));
    chain = fold_chain(chain, stage.result.digest);
    out.stages.push_back(std::move(stage));
  }
  out.seconds = watch.elapsed_seconds();
  out.chain_digest = chain;
  out.rw_checksum = pipe.rw_checksum();
  return out;
}

PipelineResult run_pipeline_cascaded(MaterializedPipeline& pipe,
                                     rt::CascadeExecutor& executor,
                                     const RtOptions& opt) {
  pipe.reset();
  PipelineResult out;
  std::uint64_t chain = MaterializedLoop::kAccSeed;
  RegionState rs;
  common::Stopwatch watch;
  for (std::size_t k = 0; k < pipe.num_stages(); ++k) {
    const analysis::StagePlan& sp = pipe.plan().stages[k];
    if (sp.region_of == k) rs = RegionState{};  // entering a fresh region
    const bool reuse = opt.helper == HelperMode::kRestructure &&
                       pipe.reuses_previous(k) && rs.trustworthy;
    PipelineStageResult stage;
    stage.name = pipe.spec().stages[k].name;
    stage.result =
        run_stage_arena(pipe.stage(k), executor, opt, pipe.region(k), rs, reuse);
    stage.reused_staging = reuse;
    if (reuse) ++out.stages_reused;
    chain = fold_chain(chain, stage.result.digest);
    out.stages.push_back(std::move(stage));
  }
  out.seconds = watch.elapsed_seconds();
  out.chain_digest = chain;
  out.rw_checksum = pipe.rw_checksum();
  return out;
}

PipelineResult run_pipeline_independent(MaterializedPipeline& pipe,
                                        unsigned num_threads,
                                        const RtOptions& opt) {
  pipe.reset();
  PipelineResult out;
  std::uint64_t chain = MaterializedLoop::kAccSeed;
  common::Stopwatch watch;
  for (std::size_t k = 0; k < pipe.num_stages(); ++k) {
    // A fresh executor per loop: the token ring is built up and torn down
    // every stage, exactly the per-loop cost the pipeline amortizes away.
    rt::ExecutorConfig cfg;
    cfg.num_threads = num_threads;
    rt::CascadeExecutor executor(cfg);
    PipelineStageResult stage;
    stage.name = pipe.spec().stages[k].name;
    stage.result = cascaded_no_reset(pipe.stage(k), executor, opt);
    chain = fold_chain(chain, stage.result.digest);
    out.stages.push_back(std::move(stage));
  }
  out.seconds = watch.elapsed_seconds();
  out.chain_digest = chain;
  out.rw_checksum = pipe.rw_checksum();
  return out;
}

}  // namespace casc::exec
