#include "casc/exec/materialize.hpp"

#include <algorithm>
#include <cstring>

#include "casc/analysis/shadow.hpp"
#include "casc/common/check.hpp"
#include "casc/common/rng.hpp"

namespace casc::exec {

namespace {

/// Materialization cap: the resolved stream costs 16 bytes per reference, so
/// this bounds the bridge at ~256 MB of stream — far above every spec in the
/// tree, far below anything that could take the host down.
constexpr std::uint64_t kMaxResolvedRefs = 1ull << 24;

}  // namespace

MaterializedLoop::MaterializedLoop(const loopir::LoopSpec& spec)
    : MaterializedLoop(spec, StorageBinder{}) {}

MaterializedLoop::MaterializedLoop(const loopir::LoopSpec& spec,
                                   const StorageBinder& bind)
    : spec_(spec), nest_(analysis::sanitized_instantiate(spec, &demoted_)) {
  const std::size_t n = nest_.num_arrays();
  storage_.resize(n);
  data_.resize(n, nullptr);
  bound_.resize(n, false);
  for (loopir::ArrayId id = 0; id < n; ++id) {
    const std::uint64_t bytes = nest_.array(id).size_bytes();
    std::byte* external =
        bind ? bind(nest_.array(id).name, bytes) : nullptr;
    if (external != nullptr) {
      data_[id] = external;
      bound_[id] = true;
    } else {
      storage_[id].assign(bytes, std::byte{0});
      data_[id] = storage_[id].data();
    }
  }
  reset();
  resolve_stream();
}

void MaterializedLoop::reset() {
  for (loopir::ArrayId id = 0; id < nest_.num_arrays(); ++id) {
    if (bound_[id]) continue;
    const loopir::ArraySpec& spec = nest_.array(id);
    ArrayBytes& bytes = storage_[id];
    const std::vector<std::uint32_t>& index_values = nest_.index_values(id);
    if (!index_values.empty()) {
      // Index array: real storage holds exactly the values the nest
      // materialized, so the runtime chases the indices the sim modelled.
      const std::size_t width = std::min<std::size_t>(spec.elem_size, 8);
      for (std::size_t i = 0; i < index_values.size(); ++i) {
        const std::uint64_t v = index_values[i];
        std::memcpy(bytes.data() + i * spec.elem_size, &v, width);
      }
      continue;
    }
    // Data array: deterministic pseudo-random contents keyed by array id, so
    // every backend (and every reset) sees identical operand values.
    common::Rng rng(0xC45CADEull ^ (std::uint64_t{id} + 1) * 0x9e3779b97f4a7c15ull);
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const std::uint64_t word = rng.next();
      const std::size_t take = std::min<std::size_t>(8, bytes.size() - pos);
      std::memcpy(bytes.data() + pos, &word, take);
      pos += take;
    }
  }
}

void MaterializedLoop::restage(const std::vector<std::string>& certified) {
  std::vector<bool> wanted(nest_.num_arrays(), false);
  bool any = false;
  for (loopir::ArrayId id = 0; id < nest_.num_arrays(); ++id) {
    for (const std::string& name : certified) {
      if (nest_.array(id).name == name) {
        wanted[id] = true;
        any = true;
      }
    }
  }
  if (!any) return;
  for (ResolvedRef& ref : refs_) {
    if (!ref.is_write && wanted[ref.array]) ref.staged = true;
  }
  rebuild_staged_stream();
}

void MaterializedLoop::resolve_stream() {
  // Base-address table for mapping the nest's simulated addresses back to
  // (array, offset); bases never overlap (finalize assigns disjoint regions).
  struct Region {
    std::uint64_t base;
    std::uint64_t size;
    loopir::ArrayId id;
  };
  std::vector<Region> regions;
  regions.reserve(nest_.num_arrays());
  for (loopir::ArrayId id = 0; id < nest_.num_arrays(); ++id) {
    regions.push_back({nest_.array_base(id), nest_.array(id).size_bytes(), id});
  }
  std::sort(regions.begin(), regions.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });
  auto resolve = [&](std::uint64_t addr) -> const Region& {
    auto it = std::upper_bound(regions.begin(), regions.end(), addr,
                               [](std::uint64_t a, const Region& r) {
                                 return a < r.base;
                               });
    CASC_CHECK(it != regions.begin(), "reference before every array base");
    const Region& region = *(it - 1);
    CASC_CHECK(addr + 1 <= region.base + region.size,
               "reference outside every array extent");
    return region;
  };

  const std::uint64_t iters = nest_.num_iterations();
  iter_offsets_.reserve(iters + 1);
  iter_offsets_.push_back(0);
  std::vector<loopir::Ref> scratch;
  for (std::uint64_t it = 0; it < iters; ++it) {
    scratch.clear();
    nest_.refs_for_iteration(it, scratch);
    CASC_CHECK(refs_.size() + scratch.size() <= kMaxResolvedRefs,
               "loop too large to materialize for the real runtime");
    for (const loopir::Ref& ref : scratch) {
      const Region& region = resolve(ref.mem.addr);
      ResolvedRef resolved;
      resolved.offset = ref.mem.addr - region.base;
      resolved.array = region.id;
      resolved.size = static_cast<std::uint8_t>(ref.mem.size);
      resolved.is_write = ref.mem.type == sim::AccessType::kWrite;
      resolved.staged = !resolved.is_write &&
                        (ref.read_only_operand || ref.is_index_load);
      CASC_CHECK(resolved.offset + resolved.size <= region.size,
                 "reference straddles an array extent");
      refs_.push_back(resolved);
    }
    iter_offsets_.push_back(refs_.size());
  }
  rebuild_staged_stream();
}

void MaterializedLoop::rebuild_staged_stream() {
  const std::uint64_t iters = num_iterations();
  staged_prefix_.assign(iters + 1, 0);
  staged_offsets_.clear();
  staged_arrays_.clear();
  staged_sizes_.clear();
  max_staged_per_iter_ = 0;
  shape_ = BodyShape{};
  shape_.uniform = iters > 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    std::uint64_t staged_here = 0;
    const std::uint64_t body_len = iter_offsets_[it + 1] - iter_offsets_[it];
    if (shape_.uniform && it > 0 && body_len != shape_.slots.size()) {
      shape_.uniform = false;
    }
    for (std::uint64_t r = iter_offsets_[it]; r < iter_offsets_[it + 1]; ++r) {
      const ResolvedRef& ref = refs_[r];
      if (ref.staged) {
        staged_offsets_.push_back(ref.offset);
        staged_arrays_.push_back(ref.array);
        staged_sizes_.push_back(ref.size);
        ++staged_here;
      }
      const SlotKind kind = ref.is_write  ? SlotKind::kWrite
                            : ref.staged  ? SlotKind::kStagedRead
                                          : SlotKind::kPlainRead;
      if (it == 0) {
        shape_.slots.push_back(kind);
      } else if (shape_.uniform &&
                 shape_.slots[r - iter_offsets_[it]] != kind) {
        shape_.uniform = false;
      }
    }
    max_staged_per_iter_ = std::max(max_staged_per_iter_, staged_here);
    staged_prefix_[it + 1] = staged_prefix_[it] + staged_here;
  }
  if (!shape_.uniform) {
    shape_.slots.clear();
    return;
  }
  for (const SlotKind kind : shape_.slots) {
    switch (kind) {
      case SlotKind::kStagedRead: ++shape_.staged_reads; break;
      case SlotKind::kPlainRead: ++shape_.plain_reads; break;
      case SlotKind::kWrite: ++shape_.writes; break;
    }
  }
}

std::uint64_t MaterializedLoop::load(const ResolvedRef& ref) const noexcept {
  std::uint64_t value = 0;
  std::memcpy(&value, addr(ref), std::min<std::size_t>(ref.size, 8));
  return value;
}

void MaterializedLoop::store(const ResolvedRef& ref, std::uint64_t value) noexcept {
  std::memcpy(data_[ref.array] + ref.offset, &value,
              std::min<std::size_t>(ref.size, 8));
}

std::uint64_t MaterializedLoop::rw_checksum() const {
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a
  for (loopir::ArrayId id = 0; id < nest_.num_arrays(); ++id) {
    if (nest_.array(id).read_only) continue;
    const std::byte* p = data_[id];
    const std::uint64_t n = nest_.array(id).size_bytes();
    for (std::uint64_t i = 0; i < n; ++i) {
      hash = (hash ^ static_cast<std::uint64_t>(p[i])) * 0x100000001b3ull;
    }
  }
  return hash;
}

}  // namespace casc::exec
