#include "casc/exec/pipeline.hpp"

#include <algorithm>
#include <cstring>

#include "casc/common/check.hpp"
#include "casc/common/rng.hpp"

namespace casc::exec {

namespace {

/// Arena ceiling: 8 GB of staged stream across the whole chain.  Far above
/// every committed spec; far below anything that could take the host down.
constexpr std::uint64_t kMaxArenaBytes = 8ull << 30;

}  // namespace

MaterializedPipeline::MaterializedPipeline(const loopir::PipelineSpec& spec)
    : spec_(spec), plan_(analysis::plan_pipeline(spec)) {
  CASC_CHECK(!spec_.stages.empty(),
             "pipeline '" + spec_.name + "' has no loop blocks");
  CASC_CHECK(plan_.arena_bytes <= kMaxArenaBytes,
             "pipeline '" + spec_.name + "' staging arena too large");

  shared_.reserve(spec_.arrays.size());
  for (const loopir::LoopSpec::ArrayDecl& decl : spec_.arrays) {
    shared_.emplace_back(static_cast<std::size_t>(decl.elem_size) *
                         decl.num_elems);
  }
  auto bind = [this](const std::string& name,
                     std::uint64_t bytes) -> std::byte* {
    for (std::size_t i = 0; i < spec_.arrays.size(); ++i) {
      if (spec_.arrays[i].name == name) {
        CASC_CHECK(bytes <= shared_[i].size(),
                   "stage array '" + name + "' outgrows the shared storage");
        return shared_[i].data();
      }
    }
    return nullptr;  // never reached: stage specs only carry pipeline arrays
  };
  stages_.reserve(spec_.stages.size());
  for (std::size_t k = 0; k < spec_.stages.size(); ++k) {
    stages_.push_back(
        std::make_unique<MaterializedLoop>(spec_.stage_spec(k), bind));
  }
  if (plan_.arena_bytes > 0) {
    arena_ = common::AlignedStorage(plan_.arena_bytes);
  }
  fill_shared_arrays();
}

void MaterializedPipeline::fill_shared_arrays() {
  for (std::size_t i = 0; i < spec_.arrays.size(); ++i) {
    const loopir::LoopSpec::ArrayDecl& decl = spec_.arrays[i];
    std::byte* out = shared_[i].data();
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(decl.elem_size) * decl.num_elems;
    if (decl.pattern) {
      // Index array: storage holds the values SOME stage's nest materialized
      // for it.  Every stage declaring it as an index array materializes the
      // identical sequence (same pattern/seed/param/size), so any stage
      // serves; a chain where every user clobbers it has no pattern
      // consumer, and the data fill below is as good a start state as any.
      bool filled = false;
      for (std::size_t k = 0; k < stages_.size() && !filled; ++k) {
        const loopir::LoopNest& nest = stages_[k]->nest();
        for (loopir::ArrayId id = 0; id < nest.num_arrays(); ++id) {
          if (nest.array(id).name != decl.name) continue;
          const std::vector<std::uint32_t>& values = nest.index_values(id);
          if (values.empty()) break;
          const std::size_t width = std::min<std::size_t>(decl.elem_size, 8);
          for (std::size_t v = 0; v < values.size(); ++v) {
            const std::uint64_t value = values[v];
            std::memcpy(out + v * decl.elem_size, &value, width);
          }
          filled = true;
          break;
        }
      }
      if (filled) continue;
    }
    // Data array: deterministic pseudo-random contents keyed by the
    // PIPELINE-level array position, so every run (and every execution path
    // over this pipeline) sees identical operand values.
    common::Rng rng(0xC45CADEull ^
                    (std::uint64_t{i} + 1) * 0x9e3779b97f4a7c15ull);
    std::uint64_t pos = 0;
    while (pos < bytes) {
      const std::uint64_t word = rng.next();
      const std::size_t take = std::min<std::uint64_t>(8, bytes - pos);
      std::memcpy(out + pos, &word, take);
      pos += take;
    }
  }
}

void MaterializedPipeline::reset() { fill_shared_arrays(); }

std::uint64_t MaterializedPipeline::rw_checksum() const {
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a
  for (std::size_t i = 0; i < spec_.arrays.size(); ++i) {
    const loopir::LoopSpec::ArrayDecl& decl = spec_.arrays[i];
    bool written = false;
    for (const loopir::PipelineSpec::Stage& stage : spec_.stages) {
      if (stage.writes(decl.name)) written = true;
    }
    if (!written) continue;
    const std::byte* p = shared_[i].data();
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(decl.elem_size) * decl.num_elems;
    for (std::uint64_t b = 0; b < bytes; ++b) {
      hash = (hash ^ static_cast<std::uint64_t>(p[b])) * 0x100000001b3ull;
    }
  }
  return hash;
}

}  // namespace casc::exec
