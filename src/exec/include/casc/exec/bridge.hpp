// The LoopSpec → real-runtime bridge: runs a MaterializedLoop under
// rt::CascadeExecutor with the cascade's helper phases, or sequentially as
// the bit-identity reference.
//
// Chunk geometry comes from core::ChunkPlan::for_iters_per_bytes — the SAME
// call the simulator's engine makes — so a spec executed on both backends
// uses the same iters-per-chunk.  The restructure gate comes from
// casc::analysis (the verifier pipeline over the spec's original claims):
// the runtime itself stays analysis-free, exactly as its PreflightGate
// contract prescribes, and a spec with unsound claims degrades to prefetch
// with the refusal recorded in the result.
//
// Helper phases on real hardware:
//   * prefetch:    force_load every operand line of the coming chunk,
//                  polling the token watch to jump out;
//   * restructure: stage every proven-read-only operand VALUE of the coming
//                  chunk into the worker's rt::SequentialBuffer (uncommitted
//                  write cursor, so a jump-out leaves the buffer untouched);
//                  the execution phase then drains values strictly
//                  sequentially instead of gathering them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "casc/core/chunk.hpp"
#include "casc/exec/materialize.hpp"
#include "casc/exec/pipeline.hpp"
#include "casc/rt/executor.hpp"

namespace casc::rt {
class ChaosPlan;  // casc/rt/fault_injection.hpp
}  // namespace casc::rt

namespace casc::exec {

enum class HelperMode { kNone, kPrefetch, kRestructure };

struct RtOptions {
  HelperMode helper = HelperMode::kRestructure;
  /// Paper §2.2 chunk byte budget; drives the shared ChunkPlan.
  std::uint64_t chunk_bytes = 64 * 1024;
  /// Explicit override; 0 derives from chunk_bytes like the simulator does.
  std::uint64_t iters_per_chunk = 0;
  /// Sequential-buffer ring depth per worker (restructure only).
  unsigned lookahead = 2;
  /// Seeded helper-fault schedule (non-owning; must outlive the run).  The
  /// planned faults are armed onto the run's helper phases — with
  /// HelperMode::kNone a no-op helper is installed so the faults still fire.
  /// The fail-soft runtime must absorb all of them: the run completes with
  /// the sequential digest, degraded counters record the damage.
  const rt::ChaosPlan* chaos = nullptr;
  /// Soft-budget demotion, derived from the sequential estimate: when both
  /// are > 0 the executor demotes helpers after (soft_budget_factor x
  /// estimated_seq_seconds) and goes fully sequential after twice that.
  /// Persists on the executor until changed (see set_soft_budget()).
  double soft_budget_factor = 0.0;
  double estimated_seq_seconds = 0.0;
};

/// Outcome of one run (either backend-side entry point).
struct ExecResult {
  std::uint64_t digest = 0;       ///< final interpreter accumulator
  std::uint64_t rw_checksum = 0;  ///< FNV over writable array contents
  double seconds = 0.0;           ///< wall time of the loop itself
  std::uint64_t total_iters = 0;
  std::uint64_t num_chunks = 1;
  std::uint64_t iters_per_chunk = 0;
  std::uint64_t transfers = 0;
  std::uint64_t helpers_completed = 0;
  std::uint64_t helpers_jumped_out = 0;
  std::uint64_t staged_chunks = 0;  ///< chunks whose staging was committed
  bool preflight_refused = false;
  std::string preflight_diag;
  // Fail-soft degradation (mirrors rt::RunStats; all zero on a clean run).
  std::uint64_t helper_faults = 0;
  std::uint64_t chunks_reclaimed = 0;
  std::uint64_t helper_retries = 0;
  std::uint64_t stagings_invalidated = 0;
  unsigned workers_quarantined = 0;
  unsigned demotion_level = 0;
  bool degraded = false;  ///< RunStats::degraded() of the underlying run
};

/// The chunk plan a cascaded run of `loop` uses — exposed so callers (and the
/// parity test) can confirm both backends derive identical geometry.
[[nodiscard]] core::ChunkPlan plan_for(const MaterializedLoop& loop,
                                       std::uint64_t chunk_bytes);

/// Restructure-safety gate for `loop`, derived from the analysis verifier
/// over the spec's ORIGINAL claims (a demoted claim refuses the gate even
/// though the sanitized nest no longer stages the offending operand).
[[nodiscard]] rt::PreflightGate gate_for(const MaterializedLoop& loop,
                                         std::uint64_t chunk_bytes);

/// Certificate-aware gate for a ring of `workers`.  When the strict verifier
/// refuses and every error is a staging-claim failure, the race certifier
/// gets the final word: a certificate proving the staged bytes write-free
/// (or token-ordered at this worker count) flips the gate to proven, and
/// `certified` (when non-null) receives the operand names whose staging the
/// certificate re-enables — feed them to MaterializedLoop::restage so the
/// helper stages what the demotion turned off.  Non-staging errors (layout,
/// footprint, parse) always refuse.
[[nodiscard]] rt::PreflightGate gate_for(const MaterializedLoop& loop,
                                         std::uint64_t chunk_bytes,
                                         std::uint64_t workers,
                                         std::vector<std::string>* certified);

/// A commutative-reduction operand as the analysis classifier reports it.
struct ReductionOperand {
  std::string name;       ///< operand (array) name
  std::string reduce_op;  ///< merge operator: "sum", "min", or "max"
  std::string klass;      ///< OperandClass::kind(), i.e. "reduction"
};

/// The first reduction operand of `spec` (classifier order), or nullopt when
/// the spec has none.  Callers above the analysis layer (the service) use
/// this to refuse reduction specs precisely — naming the operand and the
/// merge operator a future privatization runtime would need — without
/// depending on casc::analysis directly.
[[nodiscard]] std::optional<ReductionOperand> find_reduction_operand(
    const loopir::LoopSpec& spec);

/// Sequential reference interpretation (arrays reset first): the ground
/// truth every cascaded run must match bit for bit.
ExecResult run_reference(MaterializedLoop& loop);

/// Cascaded execution on the real threaded runtime (arrays reset first).
ExecResult run_cascaded(MaterializedLoop& loop, rt::CascadeExecutor& executor,
                        const RtOptions& opt = {});

// ---- pipelines -------------------------------------------------------------

/// Outcome of one stage within a pipeline run.
struct PipelineStageResult {
  std::string name;  ///< stage name (without the pipeline prefix)
  /// The stage executed against its predecessor's staged stream instead of
  /// re-gathering (plan-proven AND the predecessor's staging ran clean).
  bool reused_staging = false;
  ExecResult result;
};

/// Outcome of one whole-chain run.  The chain digest folds every stage
/// digest, and the checksum covers the pipeline's shared arrays, so the
/// three execution paths (reference / pipelined cascade / independent
/// cascades) are comparable bit for bit.
struct PipelineResult {
  std::uint64_t chain_digest = 0;
  std::uint64_t rw_checksum = 0;
  double seconds = 0.0;  ///< whole-chain wall time
  std::uint64_t stages_reused = 0;
  std::vector<PipelineStageResult> stages;

  [[nodiscard]] bool degraded() const noexcept {
    for (const PipelineStageResult& s : stages) {
      if (s.result.degraded) return true;
    }
    return false;
  }
};

/// Sequential reference for the whole chain: shared arrays reset ONCE, then
/// every stage interpreted in order (stage k's writes are stage k+1's
/// inputs).  The ground truth both cascaded paths must match bit for bit.
PipelineResult run_pipeline_reference(MaterializedPipeline& pipe);

/// The pipelined cascade: every stage runs on the SAME executor — the token
/// ring never tears down between loops — staging goes through the pipeline's
/// plan-placed arena, and a stage the survival pass certified replays its
/// predecessor's staged stream instead of re-gathering.  Reuse is proof- AND
/// health-gated: an uncertified pair, a refused gate, or a degraded
/// predecessor (faults, reclaims, invalidated stagings) falls back to full
/// re-staging; chunks whose staging never committed fall back to direct
/// array loads.  Digests are unconditionally bit-identical to the reference.
PipelineResult run_pipeline_cascaded(MaterializedPipeline& pipe,
                                     rt::CascadeExecutor& executor,
                                     const RtOptions& opt = {});

/// The baseline the pipeline is measured against: the same chain over the
/// same shared arrays, but each stage as an INDEPENDENT cascade — a fresh
/// executor (ring built up and torn down per loop), per-stage staging
/// buffers, full re-gathering every stage.  Digest-identical to the other
/// two paths by construction.
PipelineResult run_pipeline_independent(MaterializedPipeline& pipe,
                                        unsigned num_threads,
                                        const RtOptions& opt = {});

}  // namespace casc::exec
