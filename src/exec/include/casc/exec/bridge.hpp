// The LoopSpec → real-runtime bridge: runs a MaterializedLoop under
// rt::CascadeExecutor with the cascade's helper phases, or sequentially as
// the bit-identity reference.
//
// Chunk geometry comes from core::ChunkPlan::for_iters_per_bytes — the SAME
// call the simulator's engine makes — so a spec executed on both backends
// uses the same iters-per-chunk.  The restructure gate comes from
// casc::analysis (the verifier pipeline over the spec's original claims):
// the runtime itself stays analysis-free, exactly as its PreflightGate
// contract prescribes, and a spec with unsound claims degrades to prefetch
// with the refusal recorded in the result.
//
// Helper phases on real hardware:
//   * prefetch:    force_load every operand line of the coming chunk,
//                  polling the token watch to jump out;
//   * restructure: stage every proven-read-only operand VALUE of the coming
//                  chunk into the worker's rt::SequentialBuffer (uncommitted
//                  write cursor, so a jump-out leaves the buffer untouched);
//                  the execution phase then drains values strictly
//                  sequentially instead of gathering them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "casc/core/chunk.hpp"
#include "casc/exec/materialize.hpp"
#include "casc/rt/executor.hpp"

namespace casc::rt {
class ChaosPlan;  // casc/rt/fault_injection.hpp
}  // namespace casc::rt

namespace casc::exec {

enum class HelperMode { kNone, kPrefetch, kRestructure };

struct RtOptions {
  HelperMode helper = HelperMode::kRestructure;
  /// Paper §2.2 chunk byte budget; drives the shared ChunkPlan.
  std::uint64_t chunk_bytes = 64 * 1024;
  /// Explicit override; 0 derives from chunk_bytes like the simulator does.
  std::uint64_t iters_per_chunk = 0;
  /// Sequential-buffer ring depth per worker (restructure only).
  unsigned lookahead = 2;
  /// Seeded helper-fault schedule (non-owning; must outlive the run).  The
  /// planned faults are armed onto the run's helper phases — with
  /// HelperMode::kNone a no-op helper is installed so the faults still fire.
  /// The fail-soft runtime must absorb all of them: the run completes with
  /// the sequential digest, degraded counters record the damage.
  const rt::ChaosPlan* chaos = nullptr;
  /// Soft-budget demotion, derived from the sequential estimate: when both
  /// are > 0 the executor demotes helpers after (soft_budget_factor x
  /// estimated_seq_seconds) and goes fully sequential after twice that.
  /// Persists on the executor until changed (see set_soft_budget()).
  double soft_budget_factor = 0.0;
  double estimated_seq_seconds = 0.0;
};

/// Outcome of one run (either backend-side entry point).
struct ExecResult {
  std::uint64_t digest = 0;       ///< final interpreter accumulator
  std::uint64_t rw_checksum = 0;  ///< FNV over writable array contents
  double seconds = 0.0;           ///< wall time of the loop itself
  std::uint64_t total_iters = 0;
  std::uint64_t num_chunks = 1;
  std::uint64_t iters_per_chunk = 0;
  std::uint64_t transfers = 0;
  std::uint64_t helpers_completed = 0;
  std::uint64_t helpers_jumped_out = 0;
  std::uint64_t staged_chunks = 0;  ///< chunks whose staging was committed
  bool preflight_refused = false;
  std::string preflight_diag;
  // Fail-soft degradation (mirrors rt::RunStats; all zero on a clean run).
  std::uint64_t helper_faults = 0;
  std::uint64_t chunks_reclaimed = 0;
  std::uint64_t helper_retries = 0;
  std::uint64_t stagings_invalidated = 0;
  unsigned workers_quarantined = 0;
  unsigned demotion_level = 0;
  bool degraded = false;  ///< RunStats::degraded() of the underlying run
};

/// The chunk plan a cascaded run of `loop` uses — exposed so callers (and the
/// parity test) can confirm both backends derive identical geometry.
[[nodiscard]] core::ChunkPlan plan_for(const MaterializedLoop& loop,
                                       std::uint64_t chunk_bytes);

/// Restructure-safety gate for `loop`, derived from the analysis verifier
/// over the spec's ORIGINAL claims (a demoted claim refuses the gate even
/// though the sanitized nest no longer stages the offending operand).
[[nodiscard]] rt::PreflightGate gate_for(const MaterializedLoop& loop,
                                         std::uint64_t chunk_bytes);

/// Certificate-aware gate for a ring of `workers`.  When the strict verifier
/// refuses and every error is a staging-claim failure, the race certifier
/// gets the final word: a certificate proving the staged bytes write-free
/// (or token-ordered at this worker count) flips the gate to proven, and
/// `certified` (when non-null) receives the operand names whose staging the
/// certificate re-enables — feed them to MaterializedLoop::restage so the
/// helper stages what the demotion turned off.  Non-staging errors (layout,
/// footprint, parse) always refuse.
[[nodiscard]] rt::PreflightGate gate_for(const MaterializedLoop& loop,
                                         std::uint64_t chunk_bytes,
                                         std::uint64_t workers,
                                         std::vector<std::string>* certified);

/// A commutative-reduction operand as the analysis classifier reports it.
struct ReductionOperand {
  std::string name;       ///< operand (array) name
  std::string reduce_op;  ///< merge operator: "sum", "min", or "max"
  std::string klass;      ///< OperandClass::kind(), i.e. "reduction"
};

/// The first reduction operand of `spec` (classifier order), or nullopt when
/// the spec has none.  Callers above the analysis layer (the service) use
/// this to refuse reduction specs precisely — naming the operand and the
/// merge operator a future privatization runtime would need — without
/// depending on casc::analysis directly.
[[nodiscard]] std::optional<ReductionOperand> find_reduction_operand(
    const loopir::LoopSpec& spec);

/// Sequential reference interpretation (arrays reset first): the ground
/// truth every cascaded run must match bit for bit.
ExecResult run_reference(MaterializedLoop& loop);

/// Cascaded execution on the real threaded runtime (arrays reset first).
ExecResult run_cascaded(MaterializedLoop& loop, rt::CascadeExecutor& executor,
                        const RtOptions& opt = {});

}  // namespace casc::exec
