// A reuse pool for MaterializedLoops and MaterializedPipelines, keyed by the
// spec's canonical text.
//
// Materialization is the expensive step of executing a LoopSpec on the real
// runtime: instantiating the nest, filling index arrays, and resolving the
// whole dynamic reference stream (O(total refs)).  A service executing
// thousands of small jobs that mostly repeat a handful of specs pays that
// cost once per distinct spec instead of once per job: acquire() hands out
// an EXCLUSIVE lease on an idle instance (run_* entry points reset() the
// arrays, so a reused instance is indistinguishable from a fresh one) and
// materializes only on a pool miss.  Pipelines pool the same way — a cached
// MaterializedPipeline additionally keeps its survival plan and placed
// staging arena, so a repeat chain skips planning AND placement.
//
// Thread-safe.  A lease is move-only RAII: destruction returns the instance
// to the pool.  The per-key cap drops a release whose bucket is already full
// (idle instances of one key are interchangeable, so evicting a sibling for
// the incoming one would be a no-op).  The TOTAL idle cap evicts the
// least-recently-leased key's idle instance to make room for the incoming
// release — keys in active rotation stay warm, keys the workload has moved
// away from age out first.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "casc/exec/materialize.hpp"
#include "casc/exec/pipeline.hpp"

namespace casc::exec {

class LoopPool;

/// Exclusive ownership of one pooled MaterializedLoop.  Returns the loop to
/// the pool on destruction; a default-constructed lease is empty.
class LoopLease {
 public:
  LoopLease() = default;
  LoopLease(LoopLease&& other) noexcept { *this = std::move(other); }
  LoopLease& operator=(LoopLease&& other) noexcept;
  LoopLease(const LoopLease&) = delete;
  LoopLease& operator=(const LoopLease&) = delete;
  ~LoopLease();

  [[nodiscard]] bool valid() const noexcept { return loop_ != nullptr; }
  [[nodiscard]] MaterializedLoop& loop() noexcept { return *loop_; }
  [[nodiscard]] const MaterializedLoop& loop() const noexcept { return *loop_; }
  /// True when acquire() found an idle instance (no materialization ran).
  [[nodiscard]] bool reused() const noexcept { return reused_; }

 private:
  friend class LoopPool;
  LoopLease(LoopPool* pool, std::string key,
            std::unique_ptr<MaterializedLoop> loop, bool reused)
      : pool_(pool), key_(std::move(key)), loop_(std::move(loop)), reused_(reused) {}

  LoopPool* pool_ = nullptr;
  std::string key_;
  std::unique_ptr<MaterializedLoop> loop_;
  bool reused_ = false;
};

/// Exclusive ownership of one pooled MaterializedPipeline (same contract as
/// LoopLease).
class PipelineLease {
 public:
  PipelineLease() = default;
  PipelineLease(PipelineLease&& other) noexcept { *this = std::move(other); }
  PipelineLease& operator=(PipelineLease&& other) noexcept;
  PipelineLease(const PipelineLease&) = delete;
  PipelineLease& operator=(const PipelineLease&) = delete;
  ~PipelineLease();

  [[nodiscard]] bool valid() const noexcept { return pipeline_ != nullptr; }
  [[nodiscard]] MaterializedPipeline& pipeline() noexcept { return *pipeline_; }
  [[nodiscard]] const MaterializedPipeline& pipeline() const noexcept {
    return *pipeline_;
  }
  [[nodiscard]] bool reused() const noexcept { return reused_; }

 private:
  friend class LoopPool;
  PipelineLease(LoopPool* pool, std::string key,
                std::unique_ptr<MaterializedPipeline> pipeline, bool reused)
      : pool_(pool),
        key_(std::move(key)),
        pipeline_(std::move(pipeline)),
        reused_(reused) {}

  LoopPool* pool_ = nullptr;
  std::string key_;
  std::unique_ptr<MaterializedPipeline> pipeline_;
  bool reused_ = false;
};

struct LoopPoolStats {
  std::uint64_t hits = 0;        ///< acquire() served from the pool
  std::uint64_t misses = 0;      ///< acquire() had to materialize
  std::uint64_t discarded = 0;   ///< releases dropped by the per-key cap
  std::uint64_t evicted = 0;     ///< idle instances LRU-evicted by the total cap
  std::uint64_t idle = 0;        ///< instances currently pooled (loops + pipelines)
  std::uint64_t distinct_keys = 0;
};

class LoopPool {
 public:
  /// `max_idle_per_key` / `max_idle_total` bound how many idle instances the
  /// pool retains; both must be >= 1.  The total cap spans loops AND
  /// pipelines (a pooled pipeline holds a whole chain plus its arena, so it
  /// must count against the same memory bound).
  explicit LoopPool(std::size_t max_idle_per_key = 4,
                    std::size_t max_idle_total = 64);

  LoopPool(const LoopPool&) = delete;
  LoopPool& operator=(const LoopPool&) = delete;

  /// Leases an instance of `spec`.  `key` identifies the spec across calls —
  /// callers that parsed from text pass the raw text (cheap, exact); callers
  /// with programmatic specs can pass spec.to_text().  Materializes on a
  /// miss, which may throw (CheckFailure on unmaterializable specs) — the
  /// pool is unchanged in that case.
  [[nodiscard]] LoopLease acquire(const loopir::LoopSpec& spec,
                                  const std::string& key);

  /// Pipeline counterpart of acquire(): key by the pipeline's canonical text.
  /// A hit skips stage materialization, survival planning, and arena
  /// placement in one go.
  [[nodiscard]] PipelineLease acquire_pipeline(const loopir::PipelineSpec& spec,
                                               const std::string& key);

  [[nodiscard]] LoopPoolStats stats() const;

 private:
  friend class LoopLease;
  friend class PipelineLease;

  template <typename T>
  struct Bucket {
    std::vector<std::unique_ptr<T>> idle;
    std::uint64_t last_leased = 0;  ///< logical clock of the newest acquire
  };

  void release(const std::string& key, std::unique_ptr<MaterializedLoop> loop);
  void release_pipeline(const std::string& key,
                        std::unique_ptr<MaterializedPipeline> pipeline);
  /// Drops one idle instance from the least-recently-leased non-empty bucket
  /// across both maps.  Returns false when nothing is idle.  mutex_ held.
  bool evict_lru_locked();

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Bucket<MaterializedLoop>> idle_;
  std::unordered_map<std::string, Bucket<MaterializedPipeline>> idle_pipelines_;
  std::size_t max_idle_per_key_;
  std::size_t max_idle_total_;
  std::size_t idle_count_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace casc::exec
