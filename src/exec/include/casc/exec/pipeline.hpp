// Materialization of a whole loop CHAIN for the real runtime.
//
// MaterializedPipeline owns the pipeline's array namespace ONCE — one
// aligned allocation per declared array, shared by every stage through
// MaterializedLoop's storage binder — so stage k's writes are stage k+1's
// operand values, exactly like consecutive loops of a real program over the
// same arrays.  It also owns the chain's single staging ARENA, sized and
// laid out by the analysis placement pass (analysis::plan_pipeline):
// a run of stages the survival pass proved reuse-equivalent shares one
// region (the first stage gathers, the rest replay), and regions with
// disjoint live ranges share arena bytes.
//
// Interpretation semantics are per-stage MaterializedLoop semantics; the
// chain-level digest is the FNV fold of the stage digests plus the final
// shared-array checksum, so any stage diverging on any path diverges the
// chain.  bridge.hpp's run_pipeline_* entry points execute it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "casc/analysis/pipeline_plan.hpp"
#include "casc/common/aligned_alloc.hpp"
#include "casc/exec/materialize.hpp"
#include "casc/loopir/pipeline_spec.hpp"

namespace casc::exec {

/// A pipeline spec with shared real backing arrays, per-stage resolved
/// streams, and the plan-placed staging arena.
class MaterializedPipeline {
 public:
  /// Materializes every stage against shared storage.  Throws CheckFailure
  /// on invalid specs (no stages, stage instantiation failures) or chains
  /// too large to materialize.
  explicit MaterializedPipeline(const loopir::PipelineSpec& spec);

  [[nodiscard]] const loopir::PipelineSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const analysis::PipelinePlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::size_t num_stages() const noexcept { return stages_.size(); }
  [[nodiscard]] MaterializedLoop& stage(std::size_t k) { return *stages_[k]; }
  [[nodiscard]] const MaterializedLoop& stage(std::size_t k) const {
    return *stages_[k];
  }

  /// Restores every shared array to its deterministic initial contents — the
  /// chain's defined starting state.  Every pipeline run_* entry point calls
  /// this ONCE per run; stages never reset shared arrays themselves.
  void reset();

  /// FNV-1a over the bytes of every shared array some stage writes — the
  /// chain's observable output state.
  [[nodiscard]] std::uint64_t rw_checksum() const;

  /// Stage k's staging region inside the shared arena, or nullptr when the
  /// stage stages nothing.  A full-reuse run of stages returns the SAME
  /// pointer — that aliasing is the buffer reuse.
  [[nodiscard]] std::byte* region(std::size_t k) noexcept {
    const analysis::StagePlan& sp = plan_.stages[k];
    if (sp.region_bytes == 0) return nullptr;
    return arena_.data() + sp.region_offset;
  }

  /// True when the plan proved stage k may replay stage k-1's staged stream.
  [[nodiscard]] bool reuses_previous(std::size_t k) const noexcept {
    return k > 0 && plan_.pairs[k - 1].full_reuse;
  }

 private:
  void fill_shared_arrays();

  loopir::PipelineSpec spec_;
  analysis::PipelinePlan plan_;
  std::vector<common::AlignedStorage> shared_;  // one per pipeline array
  std::vector<std::unique_ptr<MaterializedLoop>> stages_;
  common::AlignedStorage arena_;
};

}  // namespace casc::exec
