// Materialization: turning a declarative loopir::LoopSpec into something the
// REAL runtime can execute.
//
// The simulator interprets a LoopNest's reference stream against a modeled
// machine; nothing ever touches memory.  MaterializedLoop closes that gap: it
// instantiates the spec (demoting false read-only claims the way the shadow
// checker does, so unsafe specs still materialize), allocates real backing
// storage for every array, fills data arrays deterministically and index
// arrays with the exact values the nest materialized, and pre-resolves the
// nest's dynamic reference stream into (array, byte-offset) pairs.  Both the
// sequential reference interpreter and the cascaded rt bridge (bridge.hpp)
// then execute the SAME resolved stream with the SAME deterministic
// semantics, so their results can be compared bit for bit.
//
// Interpretation semantics (fixed, backend-independent): one u64 accumulator
// `acc` carried across the whole loop; for each reference in body order,
//   read:  v = load(ref);            acc = mix(acc, v)
//   write: w = mix(acc, iteration);  store(ref, w); acc = w
// with mix(a, x) = (a ^ x) * 0x100000001b3.  Loads/stores move
// min(elem_size, 8) bytes little-endian.  Every iteration's writes depend on
// every prior reference, so any reordering or stale staged value changes the
// final digest — bit-identity across backends is a real check, not a
// coincidence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "casc/common/aligned_alloc.hpp"
#include "casc/loopir/loop_nest.hpp"
#include "casc/loopir/loop_spec.hpp"

namespace casc::exec {

/// One dynamic reference, resolved to real storage.  16 bytes; the resolved
/// stream is the executable form of the loop.
struct ResolvedRef {
  std::uint64_t offset = 0;   ///< byte offset within the array's storage
  std::uint32_t array = 0;    ///< loopir::ArrayId
  std::uint8_t size = 0;      ///< element bytes
  bool is_write = false;
  /// Read of a proven-read-only operand (including index loads): the
  /// restructuring helper may stage its value ahead of execution.
  bool staged = false;
};

/// Operand class of one reference slot of a uniform loop body, in body order.
enum class SlotKind : std::uint8_t {
  kStagedRead = 0,  ///< proven-read-only load; the helper may stage it
  kPlainRead = 1,   ///< load that must hit the arrays at execution time
  kWrite = 2,       ///< store (always executed in place)
};

/// Operand-class shape of the loop body, computed once from the resolved
/// stream.  When `uniform` every iteration issues the same slot sequence, so
/// the interpreter can dispatch ONCE per span to a kernel fused for that
/// sequence instead of re-branching on every ResolvedRef (bridge.cpp).  The
/// classification is re-derived whenever staging flags change (restage()).
struct BodyShape {
  bool uniform = false;             ///< every iteration has the same slots
  std::vector<SlotKind> slots;      ///< the per-iteration sequence (if uniform)
  std::uint32_t staged_reads = 0;   ///< slot counts by kind (if uniform)
  std::uint32_t plain_reads = 0;
  std::uint32_t writes = 0;
};

/// Resolves an array name to externally owned backing storage of (at least)
/// `bytes` bytes.  Returning nullptr keeps the array loop-owned; a non-null
/// pointer must stay valid for the loop's lifetime.  MaterializedPipeline
/// uses this to share one allocation per pipeline array across every stage.
using StorageBinder =
    std::function<std::byte*(const std::string& name, std::uint64_t bytes)>;

/// A spec with real backing arrays and a pre-resolved reference stream.
class MaterializedLoop {
 public:
  /// Instantiates via analysis::sanitized_instantiate (false read-only claims
  /// are demoted so unsafe specs still materialize — the demotions are
  /// recorded and also make the restructure gate refuse).  Throws
  /// CheckFailure on unrepairable specs or loops too large to materialize.
  explicit MaterializedLoop(const loopir::LoopSpec& spec);

  /// As above, but arrays the binder resolves use EXTERNAL storage: the loop
  /// neither fills nor resets them (their owner sequences that), while
  /// loop-owned arrays keep the deterministic fill.  The resolved stream and
  /// interpretation semantics are unchanged — only where the bytes live.
  MaterializedLoop(const loopir::LoopSpec& spec, const StorageBinder& bind);

  [[nodiscard]] const loopir::LoopSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const loopir::LoopNest& nest() const noexcept { return nest_; }
  /// Arrays whose read-only claim was demoted at instantiation (non-empty
  /// exactly when the spec's claims were unsound).
  [[nodiscard]] const std::vector<std::string>& demoted_claims() const noexcept {
    return demoted_;
  }

  [[nodiscard]] std::uint64_t num_iterations() const noexcept {
    return iter_offsets_.size() - 1;
  }

  /// Restores every LOOP-OWNED array to its deterministic initial contents.
  /// Each per-loop run_* entry point calls this, so repeated runs are
  /// independent.  Externally bound arrays are untouched: their owner (the
  /// pipeline) decides when the chain's state restarts.
  void reset();

  /// Re-enables staging for the named arrays: every non-write reference of
  /// each is marked staged and the prefix sums rebuilt.  The preflight gate
  /// calls this for operands whose read-only claim the sanitizer demoted but
  /// whose staged bytes the race certifier proved write-free (or token-
  /// ordered on the run's ring) — the certificate, not the claim, is the
  /// safety argument.  Names not present in the nest are ignored.
  void restage(const std::vector<std::string>& certified);

  /// FNV-1a over the bytes of every writable (non-read-only) array — the
  /// loop's observable output state.
  [[nodiscard]] std::uint64_t rw_checksum() const;

  // ---- resolved stream ----------------------------------------------------

  [[nodiscard]] const ResolvedRef* refs_begin(std::uint64_t it) const noexcept {
    return refs_.data() + iter_offsets_[it];
  }
  [[nodiscard]] const ResolvedRef* refs_end(std::uint64_t it) const noexcept {
    return refs_.data() + iter_offsets_[it + 1];
  }

  /// Number of stageable references among iterations [0, it) — prefix sums
  /// that size per-chunk staging exactly.
  [[nodiscard]] std::uint64_t staged_refs_before(std::uint64_t it) const noexcept {
    return staged_prefix_[it];
  }
  [[nodiscard]] std::uint64_t max_staged_per_iter() const noexcept {
    return max_staged_per_iter_;
  }

  /// Operand-class shape of the body (see BodyShape).
  [[nodiscard]] const BodyShape& body_shape() const noexcept { return shape_; }

  // ---- staged operand stream (SoA) ----------------------------------------
  //
  // The staged references of the whole loop, in stream order, as parallel
  // arrays.  The restructuring helper walks these instead of the interleaved
  // ResolvedRef records: runs of same-array 8-byte entries feed the SIMD
  // gather kernels (common/simd.hpp) directly, offsets as the gather index
  // vector.  Entry p covers the p'th staged reference; iteration `it` owns
  // entries [staged_refs_before(it), staged_refs_before(it + 1)).

  [[nodiscard]] const std::uint64_t* staged_offsets() const noexcept {
    return staged_offsets_.data();
  }
  [[nodiscard]] const std::uint32_t* staged_arrays() const noexcept {
    return staged_arrays_.data();
  }
  [[nodiscard]] const std::uint8_t* staged_sizes() const noexcept {
    return staged_sizes_.data();
  }
  [[nodiscard]] std::uint64_t staged_refs_total() const noexcept {
    return staged_offsets_.size();
  }

  // ---- interpreter building blocks ---------------------------------------

  [[nodiscard]] const std::byte* addr(const ResolvedRef& ref) const noexcept {
    return data_[ref.array] + ref.offset;
  }

  /// Base pointer of one array's backing storage (cache-line or huge-page
  /// aligned per the common allocation policy) — the SIMD gather kernels'
  /// base operand.  Loop-owned or externally bound, transparently.
  [[nodiscard]] const std::byte* array_data(loopir::ArrayId id) const noexcept {
    return data_[id];
  }

  /// Little-endian load of min(size, 8) bytes, zero-extended.
  [[nodiscard]] std::uint64_t load(const ResolvedRef& ref) const noexcept;
  /// Little-endian store of the low min(size, 8) bytes.
  void store(const ResolvedRef& ref, std::uint64_t value) noexcept;

  /// The shared mix step (see the header comment).
  [[nodiscard]] static constexpr std::uint64_t mix(std::uint64_t acc,
                                                   std::uint64_t x) noexcept {
    return (acc ^ x) * 0x100000001b3ull;
  }
  /// Initial accumulator value for every run.
  static constexpr std::uint64_t kAccSeed = 0x9e3779b97f4a7c15ull;

 private:
  /// Backing bytes of one array, on the unified aligned-allocation policy:
  /// cache-line aligned, huge-page aligned + advised at >= 2 MB.
  using ArrayBytes = std::vector<std::byte, common::AlignedAllocator<std::byte>>;

  void resolve_stream();
  /// Rebuilds everything derived from the staged flags: the per-iteration
  /// prefix sums, the SoA staged stream, and the body shape.  Called after
  /// resolve_stream() and after every restage().
  void rebuild_staged_stream();

  loopir::LoopSpec spec_;
  std::vector<std::string> demoted_;
  loopir::LoopNest nest_;
  std::vector<ArrayBytes> storage_;   // loop-owned backing (empty when bound)
  std::vector<std::byte*> data_;      // per-array base, owned or bound
  std::vector<bool> bound_;           // array uses external storage
  std::vector<ResolvedRef> refs_;                // flat, iteration-major
  std::vector<std::uint64_t> iter_offsets_;      // num_iterations + 1
  std::vector<std::uint64_t> staged_prefix_;     // num_iterations + 1
  std::uint64_t max_staged_per_iter_ = 0;
  std::vector<std::uint64_t> staged_offsets_;    // SoA staged stream
  std::vector<std::uint32_t> staged_arrays_;
  std::vector<std::uint8_t> staged_sizes_;
  BodyShape shape_;
};

}  // namespace casc::exec
