#include "casc/exec/loop_pool.hpp"

#include <algorithm>
#include <utility>

#include "casc/common/check.hpp"

namespace casc::exec {

LoopLease& LoopLease::operator=(LoopLease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && loop_ != nullptr) {
      pool_->release(key_, std::move(loop_));
    }
    pool_ = std::exchange(other.pool_, nullptr);
    key_ = std::move(other.key_);
    loop_ = std::move(other.loop_);
    reused_ = other.reused_;
  }
  return *this;
}

LoopLease::~LoopLease() {
  if (pool_ != nullptr && loop_ != nullptr) {
    pool_->release(key_, std::move(loop_));
  }
}

PipelineLease& PipelineLease::operator=(PipelineLease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && pipeline_ != nullptr) {
      pool_->release_pipeline(key_, std::move(pipeline_));
    }
    pool_ = std::exchange(other.pool_, nullptr);
    key_ = std::move(other.key_);
    pipeline_ = std::move(other.pipeline_);
    reused_ = other.reused_;
  }
  return *this;
}

PipelineLease::~PipelineLease() {
  if (pool_ != nullptr && pipeline_ != nullptr) {
    pool_->release_pipeline(key_, std::move(pipeline_));
  }
}

LoopPool::LoopPool(std::size_t max_idle_per_key, std::size_t max_idle_total)
    : max_idle_per_key_(max_idle_per_key), max_idle_total_(max_idle_total) {
  CASC_CHECK(max_idle_per_key >= 1, "LoopPool: max_idle_per_key must be >= 1");
  CASC_CHECK(max_idle_total >= 1, "LoopPool: max_idle_total must be >= 1");
}

LoopLease LoopPool::acquire(const loopir::LoopSpec& spec, const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket<MaterializedLoop>& bucket = idle_[key];
    bucket.last_leased = ++clock_;
    if (!bucket.idle.empty()) {
      std::unique_ptr<MaterializedLoop> loop = std::move(bucket.idle.back());
      bucket.idle.pop_back();
      --idle_count_;
      ++hits_;
      return LoopLease(this, key, std::move(loop), /*reused=*/true);
    }
  }
  // Materialize outside the lock: it is the expensive path, and concurrent
  // misses on different keys must not serialize on each other.
  auto loop = std::make_unique<MaterializedLoop>(spec);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
  }
  return LoopLease(this, key, std::move(loop), /*reused=*/false);
}

PipelineLease LoopPool::acquire_pipeline(const loopir::PipelineSpec& spec,
                                         const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket<MaterializedPipeline>& bucket = idle_pipelines_[key];
    bucket.last_leased = ++clock_;
    if (!bucket.idle.empty()) {
      std::unique_ptr<MaterializedPipeline> pipeline =
          std::move(bucket.idle.back());
      bucket.idle.pop_back();
      --idle_count_;
      ++hits_;
      return PipelineLease(this, key, std::move(pipeline), /*reused=*/true);
    }
  }
  auto pipeline = std::make_unique<MaterializedPipeline>(spec);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
  }
  return PipelineLease(this, key, std::move(pipeline), /*reused=*/false);
}

bool LoopPool::evict_lru_locked() {
  std::uint64_t oldest = 0;
  Bucket<MaterializedLoop>* loop_victim = nullptr;
  Bucket<MaterializedPipeline>* pipeline_victim = nullptr;
  for (auto& [key, bucket] : idle_) {
    if (bucket.idle.empty()) continue;
    if (loop_victim == nullptr || bucket.last_leased < oldest) {
      loop_victim = &bucket;
      oldest = bucket.last_leased;
    }
  }
  for (auto& [key, bucket] : idle_pipelines_) {
    if (bucket.idle.empty()) continue;
    if ((loop_victim == nullptr && pipeline_victim == nullptr) ||
        bucket.last_leased < oldest) {
      pipeline_victim = &bucket;
      loop_victim = nullptr;
      oldest = bucket.last_leased;
    }
  }
  if (loop_victim != nullptr) {
    loop_victim->idle.pop_back();
  } else if (pipeline_victim != nullptr) {
    pipeline_victim->idle.pop_back();
  } else {
    return false;
  }
  --idle_count_;
  ++evicted_;
  return true;
}

void LoopPool::release(const std::string& key,
                       std::unique_ptr<MaterializedLoop> loop) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket<MaterializedLoop>& bucket = idle_[key];
  if (bucket.idle.size() >= max_idle_per_key_) {
    ++discarded_;
    return;  // `loop` is destroyed here, outside any hot path
  }
  // At the total cap, make room by evicting the least-recently-leased idle
  // instance: the incoming release belongs to a key leased moments ago,
  // which is better evidence of future demand than a bucket nobody has
  // touched since.
  if (idle_count_ >= max_idle_total_ && !evict_lru_locked()) {
    ++discarded_;
    return;
  }
  bucket.idle.push_back(std::move(loop));
  ++idle_count_;
}

void LoopPool::release_pipeline(const std::string& key,
                                std::unique_ptr<MaterializedPipeline> pipeline) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket<MaterializedPipeline>& bucket = idle_pipelines_[key];
  if (bucket.idle.size() >= max_idle_per_key_) {
    ++discarded_;
    return;
  }
  if (idle_count_ >= max_idle_total_ && !evict_lru_locked()) {
    ++discarded_;
    return;
  }
  bucket.idle.push_back(std::move(pipeline));
  ++idle_count_;
}

LoopPoolStats LoopPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LoopPoolStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.discarded = discarded_;
  s.evicted = evicted_;
  s.idle = idle_count_;
  std::uint64_t keys = 0;
  for (const auto& [key, bucket] : idle_) keys += bucket.idle.empty() ? 0 : 1;
  for (const auto& [key, bucket] : idle_pipelines_) {
    keys += bucket.idle.empty() ? 0 : 1;
  }
  s.distinct_keys = keys;
  return s;
}

}  // namespace casc::exec
