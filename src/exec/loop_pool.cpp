#include "casc/exec/loop_pool.hpp"

#include <algorithm>
#include <utility>

#include "casc/common/check.hpp"

namespace casc::exec {

LoopLease& LoopLease::operator=(LoopLease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && loop_ != nullptr) {
      pool_->release(key_, std::move(loop_));
    }
    pool_ = std::exchange(other.pool_, nullptr);
    key_ = std::move(other.key_);
    loop_ = std::move(other.loop_);
    reused_ = other.reused_;
  }
  return *this;
}

LoopLease::~LoopLease() {
  if (pool_ != nullptr && loop_ != nullptr) {
    pool_->release(key_, std::move(loop_));
  }
}

LoopPool::LoopPool(std::size_t max_idle_per_key, std::size_t max_idle_total)
    : max_idle_per_key_(max_idle_per_key), max_idle_total_(max_idle_total) {
  CASC_CHECK(max_idle_per_key >= 1, "LoopPool: max_idle_per_key must be >= 1");
  CASC_CHECK(max_idle_total >= 1, "LoopPool: max_idle_total must be >= 1");
}

LoopLease LoopPool::acquire(const loopir::LoopSpec& spec, const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<MaterializedLoop> loop = std::move(it->second.back());
      it->second.pop_back();
      --idle_count_;
      ++hits_;
      return LoopLease(this, key, std::move(loop), /*reused=*/true);
    }
  }
  // Materialize outside the lock: it is the expensive path, and concurrent
  // misses on different keys must not serialize on each other.
  auto loop = std::make_unique<MaterializedLoop>(spec);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
  }
  return LoopLease(this, key, std::move(loop), /*reused=*/false);
}

void LoopPool::release(const std::string& key,
                       std::unique_ptr<MaterializedLoop> loop) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::unique_ptr<MaterializedLoop>>& bucket = idle_[key];
  if (bucket.size() >= max_idle_per_key_ || idle_count_ >= max_idle_total_) {
    ++discarded_;
    return;  // `loop` is destroyed here, outside any hot path
  }
  bucket.push_back(std::move(loop));
  ++idle_count_;
}

LoopPoolStats LoopPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LoopPoolStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.discarded = discarded_;
  s.idle = idle_count_;
  s.distinct_keys = idle_.size();
  return s;
}

}  // namespace casc::exec
