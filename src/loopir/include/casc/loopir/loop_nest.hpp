// A small intermediate representation for the sequential loops the paper
// studies.  A LoopNest declares arrays (with element size, extent, and
// read-only-ness), a trip count/step, a per-iteration compute cost, and an
// ordered list of accesses — direct (affine in the induction variable) or
// indirect (through an index array with actual, materialized values).  From
// this the simulator obtains the dynamic reference stream, and the cascade
// engine obtains the classification it needs to build helper-phase shadows
// (which operands are read-only, which loads are index loads).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "casc/sim/access.hpp"

namespace casc::loopir {

using ArrayId = std::uint32_t;

/// How finalize() assigns base addresses to the nest's arrays.
enum class LayoutPolicy {
  /// Bases aligned to a common large power of two (1 MiB), so that equal
  /// offsets in different arrays map to the same cache set at every level —
  /// the worst case for conflict misses, and the situation the paper's
  /// sequential-buffer restructuring exists to fix.
  kConflicting,
  /// Bases staggered by distinct offsets so different arrays land in
  /// different sets; conflict misses are rare.
  kStaggered,
};

/// Declares one array operand.
struct ArraySpec {
  std::string name;
  std::uint32_t elem_size = 4;   ///< bytes per element
  std::uint64_t num_elems = 0;
  bool read_only = false;        ///< never written by the loop

  [[nodiscard]] std::uint64_t size_bytes() const noexcept {
    return static_cast<std::uint64_t>(elem_size) * num_elems;
  }
};

/// Value pattern for a materialized index array.
enum class IndexPattern {
  kIdentity,     ///< IJ[i] = i (the paper's synthetic loop)
  kStrided,      ///< IJ[i] = (i * param) — regular but non-unit gather
  kRandomPerm,   ///< random permutation of 0..n-1 — irregular, each hit once
  kRandom,       ///< uniform random values — irregular with repeats
  kBlockShuffle, ///< contiguous blocks of `param` indices in shuffled order
};

/// One static access site in the loop body.  The dynamic element index for
/// iteration i is:
///   direct:    offset + stride * i                 (into `array`)
///   indirect:  index_array[offset + stride * i]    (into `array`)
/// Out-of-range indices wrap modulo the array extent so workloads can be
/// scaled freely.
struct AccessSpec {
  ArrayId array = 0;
  bool is_write = false;
  std::int64_t stride = 1;
  std::int64_t offset = 0;
  std::optional<ArrayId> index_via;  ///< indirect: id of the index array
};

/// One dynamic reference, classified for the cascade engine.
struct Ref {
  sim::MemRef mem;
  bool read_only_operand = false;  ///< read of an array the loop never writes
  bool is_index_load = false;      ///< load of an index-array element
};

/// The loop itself.  Build with the add_* methods, then finalize() to assign
/// addresses; only then may the reference-stream queries be used.
class LoopNest {
 public:
  explicit LoopNest(std::string name);

  // ---- construction -------------------------------------------------------

  /// Declares a plain data array; returns its id.
  ArrayId add_array(const ArraySpec& spec);

  /// Declares an index array of `num_elems` 32-bit entries filled per
  /// `pattern` (seeded deterministically); returns its id.  Index arrays are
  /// always read-only.
  ArrayId add_index_array(const std::string& name, std::uint64_t num_elems,
                          IndexPattern pattern, std::uint64_t seed = 1,
                          std::uint64_t param = 1);

  /// Appends an access site to the loop body (body order is reference order).
  void add_access(const AccessSpec& spec);

  /// Sets trip count `n` and step `k` (the body runs for i = 0, k, 2k, … < n).
  void set_trip(std::uint64_t n, std::uint64_t step = 1);

  /// Per-iteration compute cost (cycles) charged in addition to memory
  /// latency; `restructured` is the (usually lower) cost once indexing work
  /// has been hoisted into the helper phase.  If `restructured` is omitted a
  /// default of `cycles - 2·(indirect accesses)` (floored at 1) is applied at
  /// finalize() time.
  void set_compute_cycles(std::uint32_t cycles,
                          std::optional<std::uint32_t> restructured = std::nullopt);

  /// Assigns base addresses starting at `region_base` per `policy` and locks
  /// the nest.  Must be called exactly once before any query below.
  void finalize(LayoutPolicy policy, std::uint64_t region_base = 1ull << 32);

  // ---- queries (finalized nests only) -------------------------------------

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] std::uint64_t trip_count() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t step() const noexcept { return step_; }
  /// Number of executed iterations: ceil(n / step).
  [[nodiscard]] std::uint64_t num_iterations() const noexcept;
  [[nodiscard]] std::uint32_t compute_cycles() const noexcept { return compute_cycles_; }
  [[nodiscard]] std::uint32_t restructured_compute_cycles() const noexcept {
    return restructured_compute_cycles_;
  }

  [[nodiscard]] std::size_t num_arrays() const noexcept { return arrays_.size(); }
  [[nodiscard]] const ArraySpec& array(ArrayId id) const;
  [[nodiscard]] std::uint64_t array_base(ArrayId id) const;
  [[nodiscard]] const std::vector<AccessSpec>& accesses() const noexcept {
    return accesses_;
  }

  /// Paper §2.2: estimated bytes of data touched by one iteration — the sum
  /// of operand and index-load footprints of all non-loop-invariant access
  /// sites.  Drives chunk sizing ("64 KB chunks").
  [[nodiscard]] std::uint64_t bytes_per_iteration() const noexcept;

  /// Total distinct bytes the whole loop touches (for reporting data-set
  /// sizes; counts each array once, clipped to the portion addressable by
  /// the trip count for direct accesses).
  [[nodiscard]] std::uint64_t footprint_bytes() const noexcept;

  /// Appends the ordered dynamic references of logical iteration `it`
  /// (the it-th executed iteration, i.e. induction value it*step) to `out`.
  void refs_for_iteration(std::uint64_t it, std::vector<Ref>& out) const;

  /// Convenience used by tests: materializes the full reference stream.
  [[nodiscard]] std::vector<Ref> all_refs() const;

  /// Materialized values of index array `id` (empty for non-index arrays).
  /// casc::exec fills real backing memory from these so the threaded runtime
  /// chases exactly the indices the simulator modelled.
  [[nodiscard]] const std::vector<std::uint32_t>& index_values(ArrayId id) const;

 private:
  struct IndexData {
    ArrayId array = 0;                 // which array holds these values
    std::vector<std::uint32_t> values; // materialized index values
  };

  [[nodiscard]] const IndexData* index_data_for(ArrayId id) const noexcept;
  void require_finalized() const;
  void require_not_finalized() const;

  std::string name_;
  std::uint64_t n_ = 0;
  std::uint64_t step_ = 1;
  std::uint32_t compute_cycles_ = 1;
  std::optional<std::uint32_t> restructured_override_;
  std::uint32_t restructured_compute_cycles_ = 1;
  bool finalized_ = false;

  std::vector<ArraySpec> arrays_;
  std::vector<std::uint64_t> bases_;
  std::vector<AccessSpec> accesses_;
  std::vector<IndexData> index_data_;
};

}  // namespace casc::loopir
