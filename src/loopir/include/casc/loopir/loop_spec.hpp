// A declarative, textual form of a loop nest.  LoopNest materializes index
// arrays and locks addresses at finalize time, so it cannot be faithfully
// serialized; LoopSpec is the builder-level description that can — it round
// trips through a simple line-oriented text format and instantiates into a
// fresh LoopNest.  This is what the cascsim command-line tool consumes.
//
// Format (one directive per line; '#' starts a comment):
//
//   loop <name>
//   trip <n> [<step>]
//   compute <cycles> [<restructured>]
//   layout conflicting|staggered
//   array <name> <elem_size> <num_elems> ro|rw
//   index <name> <num_elems> identity|strided|perm|random|blocks [<seed>] [<param>]
//   access <array> read|write [stride <s>] [offset <o>] [via <index>]
//   access <array> update sum|min|max [stride <s>] [offset <o>] [via <index>]
//
// An `update` access is a commutative read-modify-write of one element —
// the a[idx[k]] op= expr shape of histograms and reductions.  It names the
// combine operator so the analysis layer can classify the operand as a
// reduction; at instantiation it lowers to a read followed by a write of
// the same site, which is exactly how both backends execute it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "casc/common/diagnostic.hpp"
#include "casc/loopir/loop_nest.hpp"

namespace casc::loopir {

/// Combine operator of a commutative `update` access (a[i] op= expr).
enum class ReduceOp { kSum, kMin, kMax };

/// Declarative description of one loop nest.
struct LoopSpec {
  struct ArrayDecl {
    std::string name;
    std::uint32_t elem_size = 4;
    std::uint64_t num_elems = 0;
    bool read_only = false;
    /// Set for index arrays; plain arrays leave it empty.
    std::optional<IndexPattern> pattern;
    std::uint64_t seed = 1;
    std::uint64_t param = 1;
    /// 1-based source line of the declaration (0 for specs built in code).
    int line = 0;
  };

  struct AccessDecl {
    std::string array;
    bool is_write = false;
    /// Set for `update` accesses (is_write stays false); the site both reads
    /// and writes its element, combining with this operator.
    std::optional<ReduceOp> update;
    std::int64_t stride = 1;
    std::int64_t offset = 0;
    std::optional<std::string> index_via;
    /// 1-based source line of the declaration (0 for specs built in code).
    int line = 0;

    /// The site loads its element (plain read or update).
    [[nodiscard]] bool reads() const noexcept { return !is_write; }
    /// The site stores its element (plain write or update).
    [[nodiscard]] bool writes() const noexcept {
      return is_write || update.has_value();
    }
  };

  std::string name = "loop";
  std::uint64_t trip = 0;
  std::uint64_t step = 1;
  std::uint32_t compute_cycles = 1;
  std::optional<std::uint32_t> restructured_compute;
  LayoutPolicy layout = LayoutPolicy::kStaggered;
  std::vector<ArrayDecl> arrays;
  std::vector<AccessDecl> accesses;

  /// Builds and finalizes the LoopNest this spec describes.  Throws
  /// CheckFailure on semantic errors (unknown array names, writes to
  /// read-only arrays, ...).
  [[nodiscard]] LoopNest instantiate() const;

  /// Renders the spec back into the text format (parse(to_text(s)) == s up to
  /// formatting).
  [[nodiscard]] std::string to_text() const;

  /// Parses the text format.  Throws CheckFailure with a line number on the
  /// first syntax or semantic error (duplicate array declarations and
  /// accesses naming undeclared arrays are rejected too).
  static LoopSpec parse(std::string_view text);

  /// Diagnostic-collecting parse: recovers line-by-line, appending one
  /// Diagnostic per problem (rules "parse-syntax", "duplicate-array",
  /// "undeclared-array", "parse-incomplete") instead of throwing.  Returns
  /// the best-effort spec; it is only instantiable when `diags.ok()`.
  static LoopSpec parse(std::string_view text, common::DiagnosticList& diags);
};

[[nodiscard]] std::string to_string(IndexPattern pattern);
[[nodiscard]] std::string to_string(LayoutPolicy policy);
[[nodiscard]] std::string to_string(ReduceOp op);

}  // namespace casc::loopir
