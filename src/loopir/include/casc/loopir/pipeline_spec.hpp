// A declarative, textual form of a loop CHAIN.  Real programs (wave5: ~15
// loops per PARMVR call) run sequences of loop nests over overlapping arrays;
// PipelineSpec is the builder-level description of such a chain: one shared
// array namespace declared at pipeline scope, plus an ordered list of loop
// blocks that access it.  Each loop block lowers to a plain LoopSpec
// (stage_spec()), so every existing consumer — the analysis verifier, the
// materializer, both backends — sees ordinary loop nests; what the pipeline
// adds is the SHARED namespace the cross-loop survival planner
// (casc::analysis::plan_pipeline) and the shared-storage materializer
// (casc::exec::MaterializedPipeline) reason over.
//
// Format (one directive per line; '#' starts a comment):
//
//   pipeline <name>
//   layout conflicting|staggered              # default for every loop block
//   array <name> <elem_size> <num_elems> ro|rw
//   index <name> <num_elems> identity|strided|perm|random|blocks [<seed>] [<param>]
//   loop <name>
//     trip <n> [<step>]
//     compute <cycles> [<restructured>]
//     layout conflicting|staggered            # optional per-loop override
//     access <array> read|write [stride <s>] [offset <o>] [via <index>]
//     access <array> update sum|min|max [stride <s>] [offset <o>] [via <index>]
//   endloop
//
// Arrays live at pipeline scope only: a loop block references them but cannot
// declare its own.  Writes to a pipeline-`ro` array are rejected
// ("pipeline-write-ro").  A loop may write an `index` array — that is how a
// chain models an index rebuild between gathers, and it is exactly the case
// the survival planner must REFUSE to reuse staged state across — but the
// same loop cannot also gather `via` that array ("pipeline-write-via"): a
// self-invalidating stage has no coherent single-loop semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "casc/common/diagnostic.hpp"
#include "casc/loopir/loop_spec.hpp"

namespace casc::loopir {

/// Declarative description of one chain of loop nests over a shared array
/// namespace.
struct PipelineSpec {
  /// One loop block.  Arrays are resolved against the pipeline's namespace.
  struct Stage {
    std::string name = "stage";
    std::uint64_t trip = 0;
    std::uint64_t step = 1;
    std::uint32_t compute_cycles = 1;
    std::optional<std::uint32_t> restructured_compute;
    /// Per-stage override of the pipeline's default layout policy.
    std::optional<LayoutPolicy> layout;
    std::vector<LoopSpec::AccessDecl> accesses;
    /// 1-based source line of the `loop` directive (0 when built in code).
    int line = 0;

    /// The stage stores into `array` through any of its accesses.
    [[nodiscard]] bool writes(const std::string& array) const noexcept {
      for (const LoopSpec::AccessDecl& acc : accesses) {
        if (acc.array == array && acc.writes()) return true;
      }
      return false;
    }
    /// The stage references `array` (as operand or as `via` index).
    [[nodiscard]] bool references(const std::string& array) const noexcept {
      for (const LoopSpec::AccessDecl& acc : accesses) {
        if (acc.array == array) return true;
        if (acc.index_via && *acc.index_via == array) return true;
      }
      return false;
    }
  };

  std::string name = "pipeline";
  LayoutPolicy layout = LayoutPolicy::kStaggered;
  std::vector<LoopSpec::ArrayDecl> arrays;
  std::vector<Stage> stages;

  /// The pipeline-scope declaration of `array`, or nullptr.
  [[nodiscard]] const LoopSpec::ArrayDecl* find_array(
      const std::string& array) const noexcept;

  /// Lowers stage `k` into a standalone LoopSpec named "<pipeline>.<stage>".
  /// Only the arrays the stage references are carried over, with HONEST
  /// per-stage mutability: an array the stage never writes is declared `ro`
  /// (so the materializer stages it), one it writes is `rw`.  An `index`
  /// array the stage writes is lowered to a plain rw array — the stage
  /// clobbers its VALUES; the pattern-materialized addressing belongs to the
  /// stages that gather via it.  Because the claims are derived rather than
  /// authored, sanitized_instantiate never demotes a stage spec.
  [[nodiscard]] LoopSpec stage_spec(std::size_t k) const;
  /// stage_spec() for every stage, in chain order.
  [[nodiscard]] std::vector<LoopSpec> stage_specs() const;

  /// Renders the spec back into the text format (parse(to_text(p)) == p up to
  /// formatting).
  [[nodiscard]] std::string to_text() const;

  /// Parses the text format.  Throws CheckFailure with a line number on the
  /// first syntax or semantic error.
  static PipelineSpec parse(std::string_view text);

  /// Diagnostic-collecting parse: recovers line-by-line, appending one
  /// Diagnostic per problem (LoopSpec's rules "parse-syntax",
  /// "duplicate-array", "undeclared-array", "parse-incomplete" plus the
  /// pipeline-specific "duplicate-loop", "pipeline-write-ro",
  /// "pipeline-write-via") instead of throwing.  Returns the best-effort
  /// spec; it is only instantiable when `diags.ok()`.
  static PipelineSpec parse(std::string_view text,
                            common::DiagnosticList& diags);
};

/// True when `text`'s first directive is `pipeline` — the dispatch test the
/// CLI tools and the service use to route a submitted spec without parsing
/// it twice.
[[nodiscard]] bool is_pipeline_text(std::string_view text);

}  // namespace casc::loopir
