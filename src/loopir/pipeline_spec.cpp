#include "casc/loopir/pipeline_spec.hpp"

#include <sstream>

#include "casc/common/check.hpp"
#include "spec_parse_detail.hpp"

namespace casc::loopir {

using detail::ParseError;

const LoopSpec::ArrayDecl* PipelineSpec::find_array(
    const std::string& array) const noexcept {
  for (const LoopSpec::ArrayDecl& decl : arrays) {
    if (decl.name == array) return &decl;
  }
  return nullptr;
}

LoopSpec PipelineSpec::stage_spec(std::size_t k) const {
  CASC_CHECK(k < stages.size(), "pipeline '" + name + "' has no stage " +
                                    std::to_string(k));
  const Stage& stage = stages[k];
  LoopSpec spec;
  spec.name = name + "." + stage.name;
  spec.trip = stage.trip;
  spec.step = stage.step;
  spec.compute_cycles = stage.compute_cycles;
  spec.restructured_compute = stage.restructured_compute;
  spec.layout = stage.layout.value_or(layout);
  for (const LoopSpec::ArrayDecl& decl : arrays) {
    if (!stage.references(decl.name)) continue;
    LoopSpec::ArrayDecl local = decl;
    if (stage.writes(decl.name)) {
      // The stage mutates this array.  An index array's materialized pattern
      // stays with the stages that gather via it; here only its VALUES are
      // storage, so it lowers to a plain rw array.
      local.pattern.reset();
      local.read_only = false;
    } else {
      // Honest per-stage claim: unwritten here, so the materializer may
      // stage it regardless of the pipeline-level mutability.
      local.read_only = true;
    }
    spec.arrays.push_back(std::move(local));
  }
  spec.accesses = stage.accesses;
  return spec;
}

std::vector<LoopSpec> PipelineSpec::stage_specs() const {
  std::vector<LoopSpec> specs;
  specs.reserve(stages.size());
  for (std::size_t k = 0; k < stages.size(); ++k) specs.push_back(stage_spec(k));
  return specs;
}

std::string PipelineSpec::to_text() const {
  std::ostringstream os;
  os << "pipeline " << name << "\n";
  os << "layout " << to_string(layout) << "\n";
  for (const LoopSpec::ArrayDecl& decl : arrays) {
    os << detail::render_array_decl(decl) << "\n";
  }
  for (const Stage& stage : stages) {
    os << "loop " << stage.name << "\n";
    os << "trip " << stage.trip << ' ' << stage.step << "\n";
    os << "compute " << stage.compute_cycles;
    if (stage.restructured_compute) os << ' ' << *stage.restructured_compute;
    os << "\n";
    if (stage.layout) os << "layout " << to_string(*stage.layout) << "\n";
    for (const LoopSpec::AccessDecl& acc : stage.accesses) {
      os << detail::render_access(acc) << "\n";
    }
    os << "endloop\n";
  }
  return os.str();
}

PipelineSpec PipelineSpec::parse(std::string_view text) {
  common::DiagnosticList diags;
  PipelineSpec spec = parse(text, diags);
  if (const common::Diagnostic* first = diags.first_error()) {
    std::string what = "pipeline spec: ";
    if (first->line > 0) what += "line " + std::to_string(first->line) + ": ";
    what += first->message + " [" + first->rule + "]";
    throw common::CheckFailure(what);
  }
  return spec;
}

PipelineSpec PipelineSpec::parse(std::string_view text,
                                 common::DiagnosticList& diags) {
  PipelineSpec spec;
  Stage current;
  bool in_loop = false;
  bool saw_trip = false;
  int line_no = 0;

  auto close_stage = [&]() {
    if (!saw_trip) {
      diags.add({common::Severity::kError, "parse-incomplete",
                 "loop '" + current.name + "' is missing a 'trip' directive",
                 current.name, "", current.line});
    }
    if (current.accesses.empty()) {
      diags.add({common::Severity::kError, "parse-incomplete",
                 "loop '" + current.name + "' has no accesses", current.name, "",
                 current.line});
    }
    for (const Stage& existing : spec.stages) {
      if (existing.name == current.name) {
        diags.add({common::Severity::kError, "duplicate-loop",
                   "loop '" + current.name + "' already declared on line " +
                       std::to_string(existing.line),
                   current.name, "", current.line});
        break;
      }
    }
    spec.stages.push_back(std::move(current));
    current = Stage{};
    in_loop = false;
    saw_trip = false;
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, end == std::string_view::npos ? text.size() - pos : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    const std::vector<std::string> tok = detail::tokenize(line);
    if (tok.empty()) continue;
    const std::string& head = tok[0];
    auto declare_array = [&](LoopSpec::ArrayDecl decl) {
      for (const LoopSpec::ArrayDecl& existing : spec.arrays) {
        if (existing.name == decl.name) {
          diags.add({common::Severity::kError, "duplicate-array",
                     "array '" + decl.name + "' already declared on line " +
                         std::to_string(existing.line),
                     "", decl.name, line_no});
          return;
        }
      }
      spec.arrays.push_back(std::move(decl));
    };

    try {
      if (head == "pipeline") {
        detail::require_args(tok, 1, 1);
        if (in_loop) throw ParseError{"'pipeline' inside a loop block"};
        spec.name = tok[1];
      } else if (head == "loop") {
        detail::require_args(tok, 1, 1);
        if (in_loop) {
          // Recover by closing the unterminated block so the new loop (and
          // everything after it) still parses.
          diags.add({common::Severity::kError, "parse-incomplete",
                     "loop '" + current.name + "' is missing 'endloop'",
                     current.name, "", line_no});
          close_stage();
        }
        in_loop = true;
        current.name = tok[1];
        current.line = line_no;
      } else if (head == "endloop") {
        detail::require_args(tok, 0, 0);
        if (!in_loop) throw ParseError{"'endloop' outside a loop block"};
        close_stage();
      } else if (head == "trip") {
        if (!in_loop) throw ParseError{"'trip' outside a loop block"};
        detail::require_args(tok, 1, 2);
        current.trip = detail::parse_number<std::uint64_t>(tok[1]);
        current.step = tok.size() > 2 ? detail::parse_number<std::uint64_t>(tok[2]) : 1;
        saw_trip = true;
      } else if (head == "compute") {
        if (!in_loop) throw ParseError{"'compute' outside a loop block"};
        detail::require_args(tok, 1, 2);
        current.compute_cycles = detail::parse_number<std::uint32_t>(tok[1]);
        if (tok.size() > 2) {
          current.restructured_compute = detail::parse_number<std::uint32_t>(tok[2]);
        }
      } else if (head == "layout") {
        const LayoutPolicy policy = detail::parse_layout(tok);
        if (in_loop) {
          current.layout = policy;
        } else {
          spec.layout = policy;
        }
      } else if (head == "array") {
        if (in_loop) throw ParseError{"arrays are declared at pipeline scope"};
        declare_array(detail::parse_array_decl(tok, line_no));
      } else if (head == "index") {
        if (in_loop) throw ParseError{"arrays are declared at pipeline scope"};
        declare_array(detail::parse_index_decl(tok, line_no));
      } else if (head == "access") {
        if (!in_loop) throw ParseError{"'access' outside a loop block"};
        current.accesses.push_back(detail::parse_access(tok, line_no));
      } else {
        throw ParseError{"unknown directive '" + head + "'"};
      }
    } catch (const ParseError& e) {
      diags.add({common::Severity::kError, "parse-syntax", e.message,
                 in_loop ? current.name : "", "", line_no});
    }
  }
  if (in_loop) {
    diags.add({common::Severity::kError, "parse-incomplete",
               "loop '" + current.name + "' is missing 'endloop'", current.name,
               "", 0});
    close_stage();
  }
  if (spec.stages.empty()) {
    diags.add({common::Severity::kError, "parse-incomplete",
               "pipeline has no loop blocks", "", "", 0});
  }

  // Name resolution and cross-loop legality, once the whole text is read.
  for (const Stage& stage : spec.stages) {
    for (const LoopSpec::AccessDecl& acc : stage.accesses) {
      const LoopSpec::ArrayDecl* decl = spec.find_array(acc.array);
      if (decl == nullptr) {
        diags.add({common::Severity::kError, "undeclared-array",
                   "access names undeclared array '" + acc.array + "'",
                   stage.name, acc.array, acc.line});
      } else if (acc.writes() && decl->read_only && !decl->pattern) {
        diags.add({common::Severity::kError, "pipeline-write-ro",
                   "loop '" + stage.name + "' writes pipeline read-only array '" +
                       acc.array + "'",
                   stage.name, acc.array, acc.line});
      }
      if (acc.index_via) {
        const LoopSpec::ArrayDecl* via = spec.find_array(*acc.index_via);
        if (via == nullptr) {
          diags.add({common::Severity::kError, "undeclared-array",
                     "access via undeclared index array '" + *acc.index_via + "'",
                     stage.name, *acc.index_via, acc.line});
        } else if (stage.writes(*acc.index_via)) {
          // A stage that rebuilds an index array cannot gather through it in
          // the same loop: with one loop body there is no defined point at
          // which the new indices take effect.
          diags.add({common::Severity::kError, "pipeline-write-via",
                     "loop '" + stage.name + "' both writes index array '" +
                         *acc.index_via + "' and gathers via it",
                     stage.name, *acc.index_via, acc.line});
        }
      }
    }
  }
  diags.set_loop(spec.name);
  return spec;
}

bool is_pipeline_text(std::string_view text) {
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, end == std::string_view::npos ? text.size() - pos : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;
    const std::vector<std::string> tok = detail::tokenize(line);
    if (tok.empty()) continue;
    return tok[0] == "pipeline";
  }
  return false;
}

}  // namespace casc::loopir
