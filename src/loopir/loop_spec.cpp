#include "casc/loopir/loop_spec.hpp"

#include <sstream>
#include <unordered_map>

#include "casc/common/check.hpp"
#include "spec_parse_detail.hpp"

namespace casc::loopir {

using detail::ParseError;

std::string to_string(IndexPattern pattern) {
  switch (pattern) {
    case IndexPattern::kIdentity: return "identity";
    case IndexPattern::kStrided: return "strided";
    case IndexPattern::kRandomPerm: return "perm";
    case IndexPattern::kRandom: return "random";
    case IndexPattern::kBlockShuffle: return "blocks";
  }
  return "?";
}

std::string to_string(LayoutPolicy policy) {
  return policy == LayoutPolicy::kConflicting ? "conflicting" : "staggered";
}

std::string to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

LoopNest LoopSpec::instantiate() const {
  CASC_CHECK(trip > 0, "loop spec '" + name + "' has no trip count");
  LoopNest nest(name);
  std::unordered_map<std::string, ArrayId> ids;
  for (const ArrayDecl& decl : arrays) {
    CASC_CHECK(!ids.contains(decl.name), "duplicate array '" + decl.name + "'");
    if (decl.pattern) {
      ids[decl.name] = nest.add_index_array(decl.name, decl.num_elems, *decl.pattern,
                                            decl.seed, decl.param);
    } else {
      ids[decl.name] =
          nest.add_array({decl.name, decl.elem_size, decl.num_elems, decl.read_only});
    }
  }
  for (const AccessDecl& acc : accesses) {
    CASC_CHECK(ids.contains(acc.array), "access names unknown array '" + acc.array + "'");
    AccessSpec spec;
    spec.array = ids.at(acc.array);
    spec.is_write = acc.is_write;
    spec.stride = acc.stride;
    spec.offset = acc.offset;
    if (acc.index_via) {
      CASC_CHECK(ids.contains(*acc.index_via),
                 "access via unknown index array '" + *acc.index_via + "'");
      spec.index_via = ids.at(*acc.index_via);
    }
    if (acc.update) {
      // A commutative update lowers to a read followed by a write of the
      // same site — the execution order both backends interpret.
      spec.is_write = false;
      nest.add_access(spec);
      spec.is_write = true;
      nest.add_access(spec);
      continue;
    }
    nest.add_access(spec);
  }
  nest.set_trip(trip, step);
  nest.set_compute_cycles(compute_cycles, restructured_compute);
  nest.finalize(layout);
  return nest;
}

std::string LoopSpec::to_text() const {
  std::ostringstream os;
  os << "loop " << name << "\n";
  os << "trip " << trip << ' ' << step << "\n";
  os << "compute " << compute_cycles;
  if (restructured_compute) os << ' ' << *restructured_compute;
  os << "\n";
  os << "layout " << to_string(layout) << "\n";
  for (const ArrayDecl& decl : arrays) {
    os << detail::render_array_decl(decl) << "\n";
  }
  for (const AccessDecl& acc : accesses) {
    os << detail::render_access(acc) << "\n";
  }
  return os.str();
}

LoopSpec LoopSpec::parse(std::string_view text) {
  common::DiagnosticList diags;
  LoopSpec spec = parse(text, diags);
  if (const common::Diagnostic* first = diags.first_error()) {
    std::string what = "loop spec: ";
    if (first->line > 0) what += "line " + std::to_string(first->line) + ": ";
    what += first->message + " [" + first->rule + "]";
    throw common::CheckFailure(what);
  }
  return spec;
}

LoopSpec LoopSpec::parse(std::string_view text, common::DiagnosticList& diags) {
  LoopSpec spec;
  bool saw_trip = false;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, end == std::string_view::npos ? text.size() - pos : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    const std::vector<std::string> tok = detail::tokenize(line);
    if (tok.empty()) continue;
    const std::string& head = tok[0];
    auto declare_array = [&](ArrayDecl decl) {
      for (const ArrayDecl& existing : spec.arrays) {
        if (existing.name == decl.name) {
          diags.add({common::Severity::kError, "duplicate-array",
                     "array '" + decl.name + "' already declared on line " +
                         std::to_string(existing.line),
                     "", decl.name, line_no});
          return;
        }
      }
      spec.arrays.push_back(std::move(decl));
    };

    try {
      if (head == "loop") {
        detail::require_args(tok, 1, 1);
        spec.name = tok[1];
      } else if (head == "trip") {
        detail::require_args(tok, 1, 2);
        spec.trip = detail::parse_number<std::uint64_t>(tok[1]);
        spec.step = tok.size() > 2 ? detail::parse_number<std::uint64_t>(tok[2]) : 1;
        saw_trip = true;
      } else if (head == "compute") {
        detail::require_args(tok, 1, 2);
        spec.compute_cycles = detail::parse_number<std::uint32_t>(tok[1]);
        if (tok.size() > 2) {
          spec.restructured_compute = detail::parse_number<std::uint32_t>(tok[2]);
        }
      } else if (head == "layout") {
        spec.layout = detail::parse_layout(tok);
      } else if (head == "array") {
        declare_array(detail::parse_array_decl(tok, line_no));
      } else if (head == "index") {
        declare_array(detail::parse_index_decl(tok, line_no));
      } else if (head == "access") {
        spec.accesses.push_back(detail::parse_access(tok, line_no));
      } else {
        throw ParseError{"unknown directive '" + head + "'"};
      }
    } catch (const ParseError& e) {
      diags.add({common::Severity::kError, "parse-syntax", e.message, "", "", line_no});
    }
  }

  // Accesses may legally precede declarations in the text, so name resolution
  // happens once the whole spec has been read.
  auto declared = [&](const std::string& name) {
    for (const ArrayDecl& decl : spec.arrays) {
      if (decl.name == name) return true;
    }
    return false;
  };
  for (const AccessDecl& acc : spec.accesses) {
    if (!declared(acc.array)) {
      diags.add({common::Severity::kError, "undeclared-array",
                 "access names undeclared array '" + acc.array + "'", "", acc.array,
                 acc.line});
    }
    if (acc.index_via && !declared(*acc.index_via)) {
      diags.add({common::Severity::kError, "undeclared-array",
                 "access via undeclared index array '" + *acc.index_via + "'", "",
                 *acc.index_via, acc.line});
    }
  }
  if (!saw_trip) {
    diags.add({common::Severity::kError, "parse-incomplete",
               "loop spec is missing a 'trip' directive", "", "", 0});
  }
  if (spec.accesses.empty()) {
    diags.add({common::Severity::kError, "parse-incomplete",
               "loop spec has no accesses", "", "", 0});
  }
  diags.set_loop(spec.name);
  return spec;
}

}  // namespace casc::loopir
