#include "casc/loopir/loop_spec.hpp"

#include <charconv>
#include <sstream>
#include <unordered_map>

#include "casc/common/check.hpp"

namespace casc::loopir {

namespace {

/// Internal parse failure for one directive; the line handler converts it
/// into a Diagnostic (and recovery continues with the next line).
struct ParseError {
  std::string message;
};

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : line) {
    if (ch == '#') break;
    if (ch == ' ' || ch == '\t' || ch == '\r') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

template <typename T>
T parse_number(const std::string& token) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw ParseError{"expected a number, got '" + token + "'"};
  }
  return value;
}

ReduceOp parse_reduce_op(const std::string& token) {
  if (token == "sum") return ReduceOp::kSum;
  if (token == "min") return ReduceOp::kMin;
  if (token == "max") return ReduceOp::kMax;
  throw ParseError{"unknown update operator '" + token + "' (sum|min|max)"};
}

IndexPattern parse_pattern(const std::string& token) {
  if (token == "identity") return IndexPattern::kIdentity;
  if (token == "strided") return IndexPattern::kStrided;
  if (token == "perm") return IndexPattern::kRandomPerm;
  if (token == "random") return IndexPattern::kRandom;
  if (token == "blocks") return IndexPattern::kBlockShuffle;
  throw ParseError{"unknown index pattern '" + token + "'"};
}

}  // namespace

std::string to_string(IndexPattern pattern) {
  switch (pattern) {
    case IndexPattern::kIdentity: return "identity";
    case IndexPattern::kStrided: return "strided";
    case IndexPattern::kRandomPerm: return "perm";
    case IndexPattern::kRandom: return "random";
    case IndexPattern::kBlockShuffle: return "blocks";
  }
  return "?";
}

std::string to_string(LayoutPolicy policy) {
  return policy == LayoutPolicy::kConflicting ? "conflicting" : "staggered";
}

std::string to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

LoopNest LoopSpec::instantiate() const {
  CASC_CHECK(trip > 0, "loop spec '" + name + "' has no trip count");
  LoopNest nest(name);
  std::unordered_map<std::string, ArrayId> ids;
  for (const ArrayDecl& decl : arrays) {
    CASC_CHECK(!ids.contains(decl.name), "duplicate array '" + decl.name + "'");
    if (decl.pattern) {
      ids[decl.name] = nest.add_index_array(decl.name, decl.num_elems, *decl.pattern,
                                            decl.seed, decl.param);
    } else {
      ids[decl.name] =
          nest.add_array({decl.name, decl.elem_size, decl.num_elems, decl.read_only});
    }
  }
  for (const AccessDecl& acc : accesses) {
    CASC_CHECK(ids.contains(acc.array), "access names unknown array '" + acc.array + "'");
    AccessSpec spec;
    spec.array = ids.at(acc.array);
    spec.is_write = acc.is_write;
    spec.stride = acc.stride;
    spec.offset = acc.offset;
    if (acc.index_via) {
      CASC_CHECK(ids.contains(*acc.index_via),
                 "access via unknown index array '" + *acc.index_via + "'");
      spec.index_via = ids.at(*acc.index_via);
    }
    if (acc.update) {
      // A commutative update lowers to a read followed by a write of the
      // same site — the execution order both backends interpret.
      spec.is_write = false;
      nest.add_access(spec);
      spec.is_write = true;
      nest.add_access(spec);
      continue;
    }
    nest.add_access(spec);
  }
  nest.set_trip(trip, step);
  nest.set_compute_cycles(compute_cycles, restructured_compute);
  nest.finalize(layout);
  return nest;
}

std::string LoopSpec::to_text() const {
  std::ostringstream os;
  os << "loop " << name << "\n";
  os << "trip " << trip << ' ' << step << "\n";
  os << "compute " << compute_cycles;
  if (restructured_compute) os << ' ' << *restructured_compute;
  os << "\n";
  os << "layout " << to_string(layout) << "\n";
  for (const ArrayDecl& decl : arrays) {
    if (decl.pattern) {
      os << "index " << decl.name << ' ' << decl.num_elems << ' '
         << to_string(*decl.pattern) << ' ' << decl.seed << ' ' << decl.param << "\n";
    } else {
      os << "array " << decl.name << ' ' << decl.elem_size << ' ' << decl.num_elems
         << ' ' << (decl.read_only ? "ro" : "rw") << "\n";
    }
  }
  for (const AccessDecl& acc : accesses) {
    os << "access " << acc.array << ' ';
    if (acc.update) {
      os << "update " << to_string(*acc.update);
    } else {
      os << (acc.is_write ? "write" : "read");
    }
    if (acc.stride != 1) os << " stride " << acc.stride;
    if (acc.offset != 0) os << " offset " << acc.offset;
    if (acc.index_via) os << " via " << *acc.index_via;
    os << "\n";
  }
  return os.str();
}

LoopSpec LoopSpec::parse(std::string_view text) {
  common::DiagnosticList diags;
  LoopSpec spec = parse(text, diags);
  if (const common::Diagnostic* first = diags.first_error()) {
    std::string what = "loop spec: ";
    if (first->line > 0) what += "line " + std::to_string(first->line) + ": ";
    what += first->message + " [" + first->rule + "]";
    throw common::CheckFailure(what);
  }
  return spec;
}

LoopSpec LoopSpec::parse(std::string_view text, common::DiagnosticList& diags) {
  LoopSpec spec;
  bool saw_trip = false;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, end == std::string_view::npos ? text.size() - pos : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& head = tok[0];
    auto require = [&](std::size_t min_args, std::size_t max_args) {
      if (tok.size() - 1 < min_args || tok.size() - 1 > max_args) {
        throw ParseError{"'" + head + "' takes between " + std::to_string(min_args) +
                         " and " + std::to_string(max_args) + " arguments"};
      }
    };
    auto declare_array = [&](ArrayDecl decl) {
      for (const ArrayDecl& existing : spec.arrays) {
        if (existing.name == decl.name) {
          diags.add({common::Severity::kError, "duplicate-array",
                     "array '" + decl.name + "' already declared on line " +
                         std::to_string(existing.line),
                     "", decl.name, line_no});
          return;
        }
      }
      spec.arrays.push_back(std::move(decl));
    };

    try {
      if (head == "loop") {
        require(1, 1);
        spec.name = tok[1];
      } else if (head == "trip") {
        require(1, 2);
        spec.trip = parse_number<std::uint64_t>(tok[1]);
        spec.step = tok.size() > 2 ? parse_number<std::uint64_t>(tok[2]) : 1;
        saw_trip = true;
      } else if (head == "compute") {
        require(1, 2);
        spec.compute_cycles = parse_number<std::uint32_t>(tok[1]);
        if (tok.size() > 2) {
          spec.restructured_compute = parse_number<std::uint32_t>(tok[2]);
        }
      } else if (head == "layout") {
        require(1, 1);
        if (tok[1] == "conflicting") {
          spec.layout = LayoutPolicy::kConflicting;
        } else if (tok[1] == "staggered") {
          spec.layout = LayoutPolicy::kStaggered;
        } else {
          throw ParseError{"unknown layout '" + tok[1] + "'"};
        }
      } else if (head == "array") {
        require(4, 4);
        ArrayDecl decl;
        decl.name = tok[1];
        decl.elem_size = parse_number<std::uint32_t>(tok[2]);
        decl.num_elems = parse_number<std::uint64_t>(tok[3]);
        if (tok[4] != "ro" && tok[4] != "rw") throw ParseError{"expected ro|rw"};
        decl.read_only = tok[4] == "ro";
        decl.line = line_no;
        declare_array(std::move(decl));
      } else if (head == "index") {
        require(3, 5);
        ArrayDecl decl;
        decl.name = tok[1];
        decl.elem_size = 4;
        decl.num_elems = parse_number<std::uint64_t>(tok[2]);
        decl.read_only = true;
        decl.pattern = parse_pattern(tok[3]);
        if (tok.size() > 4) decl.seed = parse_number<std::uint64_t>(tok[4]);
        if (tok.size() > 5) decl.param = parse_number<std::uint64_t>(tok[5]);
        decl.line = line_no;
        declare_array(std::move(decl));
      } else if (head == "access") {
        require(2, 9);
        AccessDecl acc;
        acc.array = tok[1];
        std::size_t i = 3;
        if (tok[2] == "update") {
          if (tok.size() < 4) throw ParseError{"'update' needs an operator (sum|min|max)"};
          acc.update = parse_reduce_op(tok[3]);
          i = 4;
        } else if (tok[2] == "read" || tok[2] == "write") {
          acc.is_write = tok[2] == "write";
        } else {
          throw ParseError{"expected read|write|update"};
        }
        acc.line = line_no;
        while (i < tok.size()) {
          if (tok[i] == "stride" && i + 1 < tok.size()) {
            acc.stride = parse_number<std::int64_t>(tok[i + 1]);
            i += 2;
          } else if (tok[i] == "offset" && i + 1 < tok.size()) {
            acc.offset = parse_number<std::int64_t>(tok[i + 1]);
            i += 2;
          } else if (tok[i] == "via" && i + 1 < tok.size()) {
            acc.index_via = tok[i + 1];
            i += 2;
          } else {
            throw ParseError{"unexpected token '" + tok[i] + "'"};
          }
        }
        spec.accesses.push_back(std::move(acc));
      } else {
        throw ParseError{"unknown directive '" + head + "'"};
      }
    } catch (const ParseError& e) {
      diags.add({common::Severity::kError, "parse-syntax", e.message, "", "", line_no});
    }
  }

  // Accesses may legally precede declarations in the text, so name resolution
  // happens once the whole spec has been read.
  auto declared = [&](const std::string& name) {
    for (const ArrayDecl& decl : spec.arrays) {
      if (decl.name == name) return true;
    }
    return false;
  };
  for (const AccessDecl& acc : spec.accesses) {
    if (!declared(acc.array)) {
      diags.add({common::Severity::kError, "undeclared-array",
                 "access names undeclared array '" + acc.array + "'", "", acc.array,
                 acc.line});
    }
    if (acc.index_via && !declared(*acc.index_via)) {
      diags.add({common::Severity::kError, "undeclared-array",
                 "access via undeclared index array '" + *acc.index_via + "'", "",
                 *acc.index_via, acc.line});
    }
  }
  if (!saw_trip) {
    diags.add({common::Severity::kError, "parse-incomplete",
               "loop spec is missing a 'trip' directive", "", "", 0});
  }
  if (spec.accesses.empty()) {
    diags.add({common::Severity::kError, "parse-incomplete",
               "loop spec has no accesses", "", "", 0});
  }
  diags.set_loop(spec.name);
  return spec;
}

}  // namespace casc::loopir
