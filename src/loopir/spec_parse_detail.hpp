// Internal helpers shared by the LoopSpec and PipelineSpec parsers — one
// tokenizer and one reading of each directive shape, so both text formats
// stay line-compatible (an `access`/`array`/`index` line means exactly the
// same thing inside a loop spec and inside a pipeline).  Not installed; the
// public surface is loop_spec.hpp / pipeline_spec.hpp.
#pragma once

#include <charconv>
#include <string>
#include <string_view>
#include <vector>

#include "casc/loopir/loop_spec.hpp"

namespace casc::loopir::detail {

/// Internal parse failure for one directive; the line handler converts it
/// into a Diagnostic (and recovery continues with the next line).
struct ParseError {
  std::string message;
};

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
inline std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : line) {
    if (ch == '#') break;
    if (ch == ' ' || ch == '\t' || ch == '\r') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

template <typename T>
T parse_number(const std::string& token) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw ParseError{"expected a number, got '" + token + "'"};
  }
  return value;
}

inline ReduceOp parse_reduce_op(const std::string& token) {
  if (token == "sum") return ReduceOp::kSum;
  if (token == "min") return ReduceOp::kMin;
  if (token == "max") return ReduceOp::kMax;
  throw ParseError{"unknown update operator '" + token + "' (sum|min|max)"};
}

inline IndexPattern parse_pattern(const std::string& token) {
  if (token == "identity") return IndexPattern::kIdentity;
  if (token == "strided") return IndexPattern::kStrided;
  if (token == "perm") return IndexPattern::kRandomPerm;
  if (token == "random") return IndexPattern::kRandom;
  if (token == "blocks") return IndexPattern::kBlockShuffle;
  throw ParseError{"unknown index pattern '" + token + "'"};
}

/// Argument-count check for one directive (tok[0] is the directive itself).
inline void require_args(const std::vector<std::string>& tok,
                         std::size_t min_args, std::size_t max_args) {
  if (tok.size() - 1 < min_args || tok.size() - 1 > max_args) {
    throw ParseError{"'" + tok[0] + "' takes between " +
                     std::to_string(min_args) + " and " +
                     std::to_string(max_args) + " arguments"};
  }
}

inline LayoutPolicy parse_layout(const std::vector<std::string>& tok) {
  require_args(tok, 1, 1);
  if (tok[1] == "conflicting") return LayoutPolicy::kConflicting;
  if (tok[1] == "staggered") return LayoutPolicy::kStaggered;
  throw ParseError{"unknown layout '" + tok[1] + "'"};
}

/// Reads an `array <name> <elem_size> <num_elems> ro|rw` directive.
inline LoopSpec::ArrayDecl parse_array_decl(const std::vector<std::string>& tok,
                                            int line_no) {
  require_args(tok, 4, 4);
  LoopSpec::ArrayDecl decl;
  decl.name = tok[1];
  decl.elem_size = parse_number<std::uint32_t>(tok[2]);
  decl.num_elems = parse_number<std::uint64_t>(tok[3]);
  if (tok[4] != "ro" && tok[4] != "rw") throw ParseError{"expected ro|rw"};
  decl.read_only = tok[4] == "ro";
  decl.line = line_no;
  return decl;
}

/// Reads an `index <name> <num_elems> <pattern> [seed] [param]` directive.
inline LoopSpec::ArrayDecl parse_index_decl(const std::vector<std::string>& tok,
                                            int line_no) {
  require_args(tok, 3, 5);
  LoopSpec::ArrayDecl decl;
  decl.name = tok[1];
  decl.elem_size = 4;
  decl.num_elems = parse_number<std::uint64_t>(tok[2]);
  decl.read_only = true;
  decl.pattern = parse_pattern(tok[3]);
  if (tok.size() > 4) decl.seed = parse_number<std::uint64_t>(tok[4]);
  if (tok.size() > 5) decl.param = parse_number<std::uint64_t>(tok[5]);
  decl.line = line_no;
  return decl;
}

/// Reads an `access <array> read|write|update ...` directive.
inline LoopSpec::AccessDecl parse_access(const std::vector<std::string>& tok,
                                         int line_no) {
  require_args(tok, 2, 9);
  LoopSpec::AccessDecl acc;
  acc.array = tok[1];
  std::size_t i = 3;
  if (tok[2] == "update") {
    if (tok.size() < 4) throw ParseError{"'update' needs an operator (sum|min|max)"};
    acc.update = parse_reduce_op(tok[3]);
    i = 4;
  } else if (tok[2] == "read" || tok[2] == "write") {
    acc.is_write = tok[2] == "write";
  } else {
    throw ParseError{"expected read|write|update"};
  }
  acc.line = line_no;
  while (i < tok.size()) {
    if (tok[i] == "stride" && i + 1 < tok.size()) {
      acc.stride = parse_number<std::int64_t>(tok[i + 1]);
      i += 2;
    } else if (tok[i] == "offset" && i + 1 < tok.size()) {
      acc.offset = parse_number<std::int64_t>(tok[i + 1]);
      i += 2;
    } else if (tok[i] == "via" && i + 1 < tok.size()) {
      acc.index_via = tok[i + 1];
      i += 2;
    } else {
      throw ParseError{"unexpected token '" + tok[i] + "'"};
    }
  }
  return acc;
}

/// Renders one ArrayDecl back into its directive line (no trailing newline).
inline std::string render_array_decl(const LoopSpec::ArrayDecl& decl) {
  std::string out;
  if (decl.pattern) {
    out = "index " + decl.name + ' ' + std::to_string(decl.num_elems) + ' ' +
          to_string(*decl.pattern) + ' ' + std::to_string(decl.seed) + ' ' +
          std::to_string(decl.param);
  } else {
    out = "array " + decl.name + ' ' + std::to_string(decl.elem_size) + ' ' +
          std::to_string(decl.num_elems) + (decl.read_only ? " ro" : " rw");
  }
  return out;
}

/// Renders one AccessDecl back into its directive line (no trailing newline).
inline std::string render_access(const LoopSpec::AccessDecl& acc) {
  std::string out = "access " + acc.array + ' ';
  if (acc.update) {
    out += "update " + to_string(*acc.update);
  } else {
    out += acc.is_write ? "write" : "read";
  }
  if (acc.stride != 1) out += " stride " + std::to_string(acc.stride);
  if (acc.offset != 0) out += " offset " + std::to_string(acc.offset);
  if (acc.index_via) out += " via " + *acc.index_via;
  return out;
}

}  // namespace casc::loopir::detail
