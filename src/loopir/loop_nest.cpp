#include "casc/loopir/loop_nest.hpp"

#include <algorithm>
#include <numeric>

#include "casc/common/align.hpp"
#include "casc/common/check.hpp"
#include "casc/common/rng.hpp"

namespace casc::loopir {

namespace {
/// Alignment that guarantees set collisions in every cache we model: larger
/// than any way size (R10000 L2 way = 1 MiB).
constexpr std::uint64_t kConflictAlign = 1ull << 20;
/// Staggered layout lays arrays out consecutively (malloc-style) with pads
/// chosen so that different arrays' equal offsets land in different cache
/// sets at every modeled level.  The 64 KiB term spreads bases across large
/// (L2) ways; the 2112-byte term spreads them across small (L1) ways — 2112
/// is not a multiple of any modeled way size, so cumulative pads stay
/// distinct modulo all of them.
constexpr std::uint64_t kStaggerCoarse = 64 * 1024;
constexpr std::uint64_t kStaggerFine = 2 * 1024 + 64;
}  // namespace

LoopNest::LoopNest(std::string name) : name_(std::move(name)) {}

void LoopNest::require_finalized() const {
  CASC_CHECK(finalized_, "LoopNest '" + name_ + "' must be finalized first");
}

void LoopNest::require_not_finalized() const {
  CASC_CHECK(!finalized_, "LoopNest '" + name_ + "' is already finalized");
}

ArrayId LoopNest::add_array(const ArraySpec& spec) {
  require_not_finalized();
  CASC_CHECK(spec.num_elems > 0, "array must have at least one element");
  CASC_CHECK(spec.elem_size > 0, "element size must be positive");
  arrays_.push_back(spec);
  return static_cast<ArrayId>(arrays_.size() - 1);
}

ArrayId LoopNest::add_index_array(const std::string& name, std::uint64_t num_elems,
                                  IndexPattern pattern, std::uint64_t seed,
                                  std::uint64_t param) {
  require_not_finalized();
  CASC_CHECK(num_elems > 0, "index array must have at least one element");
  ArraySpec spec;
  spec.name = name;
  spec.elem_size = 4;
  spec.num_elems = num_elems;
  spec.read_only = true;
  const ArrayId id = add_array(spec);

  IndexData data;
  data.array = id;
  data.values.resize(num_elems);
  common::Rng rng(seed * 0x9e3779b97f4a7c15ULL + id);
  switch (pattern) {
    case IndexPattern::kIdentity:
      std::iota(data.values.begin(), data.values.end(), 0u);
      break;
    case IndexPattern::kStrided:
      for (std::uint64_t i = 0; i < num_elems; ++i) {
        data.values[i] = static_cast<std::uint32_t>((i * param) % num_elems);
      }
      break;
    case IndexPattern::kRandomPerm: {
      std::iota(data.values.begin(), data.values.end(), 0u);
      for (std::uint64_t i = num_elems - 1; i > 0; --i) {
        std::swap(data.values[i], data.values[rng.below(i + 1)]);
      }
      break;
    }
    case IndexPattern::kRandom:
      for (auto& v : data.values) {
        v = static_cast<std::uint32_t>(rng.below(num_elems));
      }
      break;
    case IndexPattern::kBlockShuffle: {
      // Blocks of `param` consecutive indices, in shuffled block order:
      // spatial locality within a block, none across blocks.
      const std::uint64_t block = std::max<std::uint64_t>(1, param);
      const std::uint64_t num_blocks = (num_elems + block - 1) / block;
      std::vector<std::uint64_t> order(num_blocks);
      std::iota(order.begin(), order.end(), 0u);
      for (std::uint64_t i = num_blocks - 1; i > 0; --i) {
        std::swap(order[i], order[rng.below(i + 1)]);
      }
      std::uint64_t pos = 0;
      for (std::uint64_t b : order) {
        for (std::uint64_t j = b * block; j < std::min((b + 1) * block, num_elems); ++j) {
          data.values[pos++] = static_cast<std::uint32_t>(j);
        }
      }
      break;
    }
  }
  index_data_.push_back(std::move(data));
  return id;
}

void LoopNest::add_access(const AccessSpec& spec) {
  require_not_finalized();
  CASC_CHECK(spec.array < arrays_.size(), "access names an unknown array");
  if (spec.is_write) {
    CASC_CHECK(!arrays_[spec.array].read_only, "write access to a read-only array");
  }
  if (spec.index_via) {
    CASC_CHECK(*spec.index_via < arrays_.size(), "unknown index array");
    CASC_CHECK(index_data_for(*spec.index_via) != nullptr,
               "index_via must name an array created with add_index_array");
  }
  accesses_.push_back(spec);
}

void LoopNest::set_trip(std::uint64_t n, std::uint64_t step) {
  require_not_finalized();
  CASC_CHECK(n > 0, "trip count must be positive");
  CASC_CHECK(step > 0, "step must be positive");
  n_ = n;
  step_ = step;
}

void LoopNest::set_compute_cycles(std::uint32_t cycles,
                                  std::optional<std::uint32_t> restructured) {
  require_not_finalized();
  CASC_CHECK(cycles >= 1, "compute cost must be at least one cycle");
  if (restructured) {
    CASC_CHECK(*restructured >= 1 && *restructured <= cycles,
               "restructured compute must be in [1, compute]");
  }
  compute_cycles_ = cycles;
  restructured_override_ = restructured;
}

void LoopNest::finalize(LayoutPolicy policy, std::uint64_t region_base) {
  require_not_finalized();
  CASC_CHECK(n_ > 0, "set_trip() must be called before finalize()");
  CASC_CHECK(!accesses_.empty(), "a loop with no accesses is not a workload");

  bases_.resize(arrays_.size());
  std::uint64_t cursor = common::round_up(region_base, kConflictAlign);
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    if (policy == LayoutPolicy::kConflicting) {
      // Every base on a 1 MiB boundary: equal offsets in different arrays
      // map to the same set at every cache level (worst-case conflicts).
      cursor = common::round_up(cursor, kConflictAlign);
      bases_[a] = cursor;
      cursor += arrays_[a].size_bytes();
    } else {
      // Consecutive layout with a per-array pad that de-phases the streams
      // in set space at both L1 and L2 granularity.
      bases_[a] = cursor;
      cursor += arrays_[a].size_bytes() +
                (2 * static_cast<std::uint64_t>(a) + 1) * kStaggerCoarse +
                kStaggerFine;
    }
  }

  if (restructured_override_) {
    restructured_compute_cycles_ = *restructured_override_;
  } else {
    std::uint32_t indirects = 0;
    for (const AccessSpec& acc : accesses_) {
      if (acc.index_via) ++indirects;
    }
    const std::uint32_t saved = 2 * indirects;
    restructured_compute_cycles_ = compute_cycles_ > saved ? compute_cycles_ - saved : 1;
  }

  finalized_ = true;
}

std::uint64_t LoopNest::num_iterations() const noexcept {
  return (n_ + step_ - 1) / step_;
}

const ArraySpec& LoopNest::array(ArrayId id) const {
  CASC_CHECK(id < arrays_.size(), "array id out of range");
  return arrays_[id];
}

std::uint64_t LoopNest::array_base(ArrayId id) const {
  require_finalized();
  CASC_CHECK(id < arrays_.size(), "array id out of range");
  return bases_[id];
}

const LoopNest::IndexData* LoopNest::index_data_for(ArrayId id) const noexcept {
  for (const IndexData& d : index_data_) {
    if (d.array == id) return &d;
  }
  return nullptr;
}

const std::vector<std::uint32_t>& LoopNest::index_values(ArrayId id) const {
  CASC_CHECK(id < arrays_.size(), "array id out of range");
  static const std::vector<std::uint32_t> kEmpty;
  const IndexData* d = index_data_for(id);
  return d == nullptr ? kEmpty : d->values;
}

std::uint64_t LoopNest::bytes_per_iteration() const noexcept {
  std::uint64_t bytes = 0;
  for (const AccessSpec& acc : accesses_) {
    if (acc.stride == 0) continue;  // loop-invariant: stays cached
    bytes += arrays_[acc.array].elem_size;
    if (acc.index_via) bytes += arrays_[*acc.index_via].elem_size;
  }
  return bytes;
}

std::uint64_t LoopNest::footprint_bytes() const noexcept {
  std::uint64_t total = 0;
  std::vector<bool> counted(arrays_.size(), false);
  for (const AccessSpec& acc : accesses_) {
    auto count_array = [&](ArrayId id) {
      if (counted[id]) return;
      counted[id] = true;
      total += arrays_[id].size_bytes();
    };
    count_array(acc.array);
    if (acc.index_via) count_array(*acc.index_via);
  }
  return total;
}

void LoopNest::refs_for_iteration(std::uint64_t it, std::vector<Ref>& out) const {
  require_finalized();
  CASC_CHECK(it < num_iterations(), "iteration index out of range");
  const std::uint64_t i = it * step_;
  for (const AccessSpec& acc : accesses_) {
    const ArraySpec& target = arrays_[acc.array];
    const std::int64_t pos_signed =
        acc.offset + acc.stride * static_cast<std::int64_t>(i);
    // Wrap to the valid range; negative positions wrap from the end.
    std::uint64_t elem;
    if (acc.index_via) {
      const ArraySpec& ia_spec = arrays_[*acc.index_via];
      const IndexData* ia = index_data_for(*acc.index_via);
      const std::uint64_t ia_pos =
          static_cast<std::uint64_t>(pos_signed % static_cast<std::int64_t>(ia_spec.num_elems) +
                                     static_cast<std::int64_t>(ia_spec.num_elems)) %
          ia_spec.num_elems;
      // The load of the index element is itself a memory reference.
      Ref idx_ref;
      idx_ref.mem = {bases_[*acc.index_via] + ia_pos * ia_spec.elem_size,
                     ia_spec.elem_size, sim::AccessType::kRead};
      idx_ref.read_only_operand = true;
      idx_ref.is_index_load = true;
      out.push_back(idx_ref);
      elem = ia->values[ia_pos] % target.num_elems;
    } else {
      elem = static_cast<std::uint64_t>(
                 pos_signed % static_cast<std::int64_t>(target.num_elems) +
                 static_cast<std::int64_t>(target.num_elems)) %
             target.num_elems;
    }
    Ref ref;
    ref.mem = {bases_[acc.array] + elem * target.elem_size, target.elem_size,
               acc.is_write ? sim::AccessType::kWrite : sim::AccessType::kRead};
    ref.read_only_operand = target.read_only && !acc.is_write;
    ref.is_index_load = false;
    out.push_back(ref);
  }
}

std::vector<Ref> LoopNest::all_refs() const {
  std::vector<Ref> out;
  const std::uint64_t iters = num_iterations();
  out.reserve(iters * accesses_.size());
  for (std::uint64_t it = 0; it < iters; ++it) {
    refs_for_iteration(it, out);
  }
  return out;
}

}  // namespace casc::loopir
